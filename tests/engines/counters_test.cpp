#include "engines/counters.hpp"

#include <gtest/gtest.h>

#include "obs/engine_metrics.hpp"

namespace scmd {
namespace {

EngineCounters sample_counters(std::uint64_t base) {
  EngineCounters c;
  for (std::size_t n = 2; n <= 4; ++n) {
    c.tuples[n].search_steps = base * n;
    c.tuples[n].chain_candidates = base * n + 1;
    c.tuples[n].accepted = base * n + 2;
    c.tuples[n].cell_visits = base * n + 3;
    c.evals[n] = base + n;
    c.force_set[n] = static_cast<long long>(base * 10 + n);
  }
  c.list_pairs = base * 7;
  c.list_scan_steps = base * 11;
  c.ghost_atoms_imported = base * 13;
  c.messages = base * 17;
  c.bytes_imported = base * 19;
  c.bytes_written_back = base * 23;
  return c;
}

TEST(EngineCountersTest, PlusEqualsAccumulatesEveryField) {
  EngineCounters a = sample_counters(2);
  const EngineCounters b = sample_counters(3);
  a += b;
  EXPECT_EQ(a.tuples[3].search_steps, 2u * 3 + 3u * 3);
  EXPECT_EQ(a.tuples[4].cell_visits, (2u * 4 + 3) + (3u * 4 + 3));
  EXPECT_EQ(a.evals[2], (2u + 2) + (3u + 2));
  EXPECT_EQ(a.force_set[4], (2 * 10 + 4) + (3 * 10 + 4));
  EXPECT_EQ(a.list_pairs, 2u * 7 + 3u * 7);
  EXPECT_EQ(a.bytes_written_back, 2u * 23 + 3u * 23);
}

TEST(EngineCountersTest, DeltaRoundTrip) {
  // cumulative = prev + step; cumulative.delta_since(prev) == step.
  const EngineCounters prev = sample_counters(5);
  const EngineCounters step = sample_counters(2);
  EngineCounters cumulative = prev;
  cumulative += step;

  const EngineCounters d = cumulative.delta_since(prev);
  for (std::size_t n = 0; n < d.tuples.size(); ++n) {
    EXPECT_EQ(d.tuples[n].search_steps, step.tuples[n].search_steps);
    EXPECT_EQ(d.tuples[n].chain_candidates, step.tuples[n].chain_candidates);
    EXPECT_EQ(d.tuples[n].accepted, step.tuples[n].accepted);
    EXPECT_EQ(d.tuples[n].cell_visits, step.tuples[n].cell_visits);
    EXPECT_EQ(d.evals[n], step.evals[n]);
    EXPECT_EQ(d.force_set[n], step.force_set[n]);
  }
  EXPECT_EQ(d.list_pairs, step.list_pairs);
  EXPECT_EQ(d.list_scan_steps, step.list_scan_steps);
  EXPECT_EQ(d.ghost_atoms_imported, step.ghost_atoms_imported);
  EXPECT_EQ(d.messages, step.messages);
  EXPECT_EQ(d.bytes_imported, step.bytes_imported);
  EXPECT_EQ(d.bytes_written_back, step.bytes_written_back);
  EXPECT_EQ(d.total_search_steps(), step.total_search_steps());

  // Add the delta back: recovers the cumulative value.
  EngineCounters rebuilt = prev;
  rebuilt += d;
  EXPECT_EQ(rebuilt.total_search_steps(), cumulative.total_search_steps());
  EXPECT_EQ(rebuilt.bytes_imported, cumulative.bytes_imported);
}

TEST(EngineCountersTest, TotalSearchStepsSumsTuplesAndListWork) {
  EngineCounters c;
  c.tuples[2].search_steps = 10;
  c.tuples[3].search_steps = 20;
  c.list_scan_steps = 5;
  EXPECT_EQ(c.total_search_steps(), 35u);
}

TEST(EngineMetricsTest, RecordStepExportsSchemaGauges) {
  obs::MetricsRegistry reg;
  obs::StepSample sample;
  sample.potential_energy = -10.0;
  sample.total_energy = -8.0;
  sample.temperature = 300.0;
  sample.work = sample_counters(2);
  sample.max_n = 3;
  obs::record_step(reg, sample);

  EXPECT_EQ(reg.value("energy.potential"), -10.0);
  EXPECT_EQ(reg.value("energy.total"), -8.0);
  EXPECT_EQ(reg.value("search.steps.n2"), 4.0);
  EXPECT_EQ(reg.value("search.steps.n3"), 6.0);
  EXPECT_FALSE(reg.has("search.steps.n4"));  // capped by max_n
  EXPECT_EQ(reg.value("force_set.n3"), 23.0);
  EXPECT_EQ(reg.value("comm.bytes_in"), 38.0);
  EXPECT_EQ(reg.value("search.total"),
            static_cast<double>(sample.work.total_search_steps()));
}

TEST(EngineMetricsTest, RankImbalanceMaxAvgAndEq33ImportVolume) {
  obs::MetricsRegistry reg;
  std::vector<EngineCounters> ranks(2);
  ranks[0].tuples[2].search_steps = 100;
  ranks[0].bytes_imported = 1000;
  ranks[1].tuples[2].search_steps = 300;
  ranks[1].bytes_imported = 3000;
  obs::record_rank_imbalance(reg, ranks);

  EXPECT_EQ(reg.value("imbalance.search.max"), 300.0);
  EXPECT_EQ(reg.value("imbalance.search.avg"), 200.0);
  EXPECT_EQ(reg.value("imbalance.search.ratio"), 1.5);
  EXPECT_EQ(reg.value("comm.import_bytes.max_rank"), 3000.0);
  EXPECT_EQ(reg.value("comm.import_bytes.avg_rank"), 2000.0);
}

}  // namespace
}  // namespace scmd
