// JobScheduler semantics (serve/scheduler.hpp): priority-desc then
// FIFO ordering, space-sharing backfill, lowest-free-rank allocation,
// queued-vs-running cancel, dead-rank retirement, and the job-table
// JSON schema the status channel publishes.

#include <gtest/gtest.h>

#include <string>

#include "serve/scheduler.hpp"
#include "support/error.hpp"

namespace scmd::serve {
namespace {

std::int64_t submit(JobScheduler& s, int priority, int ranks,
                    double now = 0.0) {
  return s.submit("field = lj\n", priority, ranks, /*steps_total=*/10,
                  /*want_checkpoint=*/false, /*resume_job=*/0, now);
}

TEST(JobSchedulerTest, PriorityThenFifo) {
  JobScheduler s(2);
  const auto a = submit(s, 0, 2);
  const auto b = submit(s, 5, 2);
  const auto c = submit(s, 0, 2);
  ASSERT_EQ(s.start_next(1.0), b);  // highest priority first
  s.finish(b, JobState::kDone, "", 0.0, 10, 2.0);
  ASSERT_EQ(s.start_next(2.0), a);  // FIFO within a priority class
  s.finish(a, JobState::kDone, "", 0.0, 10, 3.0);
  ASSERT_EQ(s.start_next(3.0), c);
  s.finish(c, JobState::kDone, "", 0.0, 10, 4.0);
  EXPECT_EQ(s.start_next(4.0), 0);
  EXPECT_EQ(s.queue_depth(), 0);
  EXPECT_EQ(s.active_jobs(), 0);
  EXPECT_EQ(s.jobs_submitted(), 3);
}

TEST(JobSchedulerTest, BackfillPastTooLargeJob) {
  JobScheduler s(3);
  const auto small1 = submit(s, 0, 2);
  ASSERT_EQ(s.start_next(0.0), small1);  // holds ranks {1, 2}
  const auto big = submit(s, 0, 3);      // cannot fit while small1 runs
  const auto small2 = submit(s, 0, 1);
  ASSERT_EQ(s.start_next(0.0), small2);  // backfills past `big`
  EXPECT_EQ(s.free_ranks(), 0);
  EXPECT_EQ(s.start_next(0.0), 0);
  s.finish(small1, JobState::kDone, "", 0.0, 10, 1.0);
  s.finish(small2, JobState::kDone, "", 0.0, 10, 1.0);
  ASSERT_EQ(s.start_next(1.0), big);
  EXPECT_EQ(s.find(big)->pool_ranks.size(), 3u);
}

TEST(JobSchedulerTest, AllocatesLowestFreeRanksFirst) {
  JobScheduler s(4);
  const auto a = submit(s, 0, 2);
  ASSERT_EQ(s.start_next(0.0), a);
  EXPECT_EQ(s.find(a)->pool_ranks, (std::vector<int>{1, 2}));
  const auto b = submit(s, 0, 2);
  ASSERT_EQ(s.start_next(0.0), b);
  EXPECT_EQ(s.find(b)->pool_ranks, (std::vector<int>{3, 4}));
  s.finish(a, JobState::kDone, "", 0.0, 10, 1.0);
  const auto c = submit(s, 0, 1);
  ASSERT_EQ(s.start_next(1.0), c);
  EXPECT_EQ(s.find(c)->pool_ranks, (std::vector<int>{1}));
}

TEST(JobSchedulerTest, RejectsDemandThePoolCanNeverSatisfy) {
  JobScheduler s(2);
  EXPECT_THROW(submit(s, 0, 3), Error);
  EXPECT_THROW(submit(s, 0, 0), Error);
}

TEST(JobSchedulerTest, CancelQueuedVsRunning) {
  JobScheduler s(2);
  const auto a = submit(s, 0, 2);
  const auto b = submit(s, 0, 2);
  ASSERT_EQ(s.start_next(0.0), a);
  // Running job: the daemon must interrupt it.
  EXPECT_FALSE(s.cancel_queued(a, 1.0));
  EXPECT_EQ(s.find(a)->state, JobState::kRunning);
  // Queued job: terminal immediately.
  EXPECT_TRUE(s.cancel_queued(b, 1.0));
  EXPECT_EQ(s.find(b)->state, JobState::kCancelled);
  // Terminal and unknown jobs: no-op true.
  EXPECT_TRUE(s.cancel_queued(b, 2.0));
  EXPECT_TRUE(s.cancel_queued(999, 2.0));
}

TEST(JobSchedulerTest, FinishFreesRanksAndRecordsOutcome) {
  JobScheduler s(2);
  const auto a = submit(s, 0, 2);
  ASSERT_EQ(s.start_next(0.0), a);
  EXPECT_EQ(s.free_ranks(), 0);
  s.finish(a, JobState::kFailed, "boom", -1.5, 7, 1.0);
  EXPECT_EQ(s.free_ranks(), 2);
  const JobRecord* rec = s.find(a);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_EQ(rec->error, "boom");
  EXPECT_EQ(rec->steps_done, 7);
  EXPECT_TRUE(rec->pool_ranks.empty());
}

TEST(JobSchedulerTest, DeadRankLeavesThePoolForever) {
  JobScheduler s(2);
  s.mark_rank_dead(2);
  EXPECT_EQ(s.free_ranks(), 1);
  EXPECT_EQ(s.dead_ranks(), 1);
  const auto a = submit(s, 0, 2);  // pool size still 2, so submit passes
  EXPECT_EQ(s.start_next(0.0), 0);  // but it can never be scheduled now
  const auto b = submit(s, 0, 1);
  ASSERT_EQ(s.start_next(0.0), b);  // dead rank skipped in allocation
  EXPECT_EQ(s.find(b)->pool_ranks, (std::vector<int>{1}));
  (void)a;
}

TEST(JobSchedulerTest, ProgressFeedsStepsPerSec) {
  JobScheduler s(2);
  const auto a = submit(s, 0, 2, /*now=*/0.0);
  ASSERT_EQ(s.start_next(1.0), a);
  s.record_progress(a, 50, 51, 3.0);
  const JobRecord* rec = s.find(a);
  EXPECT_EQ(rec->steps_done, 50);
  EXPECT_EQ(rec->chunks, 51);
  EXPECT_NEAR(rec->steps_per_sec, 25.0, 1e-9);
  s.record_progress(999, 1, 1, 3.0);  // unknown id: ignored
}

TEST(JobSchedulerTest, TableJsonCarriesTheSchema) {
  JobScheduler s(3);
  const auto a = submit(s, 2, 2, 0.0);
  ASSERT_EQ(s.start_next(0.5), a);
  submit(s, 0, 3, 1.0);
  s.mark_rank_dead(3);
  const std::string json = s.table_json(2.0);
  EXPECT_NE(json.find("\"pool\":{\"workers\":3,\"free\":0,\"dead\":1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"queue_depth\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"jobs_active\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"running\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ranks\":[1,2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_latency_s\":0.5"), std::string::npos) << json;

  // Errors are JSON-escaped.
  s.finish(a, JobState::kFailed, "say \"what\"\n", 0.0, 1, 3.0);
  const std::string failed = s.table_json(3.0);
  EXPECT_NE(failed.find("say \\\"what\\\"\\n"), std::string::npos) << failed;
  EXPECT_NE(failed.find("\"runtime_s\":"), std::string::npos) << failed;
}

}  // namespace
}  // namespace scmd::serve
