// Service-protocol contract (docs/SERVICE.md), in the transport-
// semantics style: the same suite runs against an inproc warm pool and
// a loopback TCP pool.  Covers the full session surface — submit /
// poll / stream / cancel / jobs / shutdown — plus the reject paths
// (bad config, resource caps, unknown jobs, malformed and oversized
// frames) and the acceptance scenario: one warm pool serving two
// concurrent jobs and a cancel without a restart.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "pool_harness.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace scmd::serve_test {
namespace {

using serve::ChunkMsg;
using serve::ClientConnection;
using serve::JobState;
using serve::JobStatus;
using serve::MsgType;
using serve::StreamEnd;
using serve::SubmitRequest;

std::int64_t submit_config(ClientConnection& conn, const std::string& config,
                           int priority = 0, bool want_checkpoint = false,
                           std::int64_t resume_job = 0) {
  SubmitRequest req;
  req.config_text = config;
  req.priority = priority;
  req.want_checkpoint = want_checkpoint;
  req.resume_job = resume_job;
  return conn.submit(req);
}

/// Raw TCP connection for speaking deliberately broken protocol.
int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void send_all(int fd, const void* data, std::size_t n) {
  ASSERT_EQ(::send(fd, data, n, 0), static_cast<ssize_t>(n));
}

class ServiceProtocolTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ServiceProtocolTest, SubmitPollStreamDone) {
  ServicePool pool(GetParam(), 3);
  ClientConnection conn("127.0.0.1", pool.client_port());

  const auto id = submit_config(conn, lj_job(/*steps=*/5));
  EXPECT_GT(id, 0);
  const JobStatus st = wait_terminal(conn, id);
  EXPECT_EQ(st.state, JobState::kDone);
  EXPECT_EQ(st.steps_done, 5);
  EXPECT_EQ(st.steps_total, 5);
  EXPECT_GT(st.chunks, 0);
  EXPECT_TRUE(std::isfinite(st.potential_energy));

  // The closed stream replays every retained chunk, densely numbered
  // from 0, then delivers the terminal marker.
  std::vector<ChunkMsg> chunks;
  const StreamEnd end = conn.stream(
      id, 0, [&chunks](const ChunkMsg& c) { chunks.push_back(c); });
  EXPECT_EQ(end.job_id, id);
  EXPECT_EQ(end.state, JobState::kDone);
  EXPECT_TRUE(end.error.empty());
  ASSERT_EQ(static_cast<std::int64_t>(chunks.size()), st.chunks);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].seq, static_cast<std::int64_t>(i));
    EXPECT_EQ(chunks[i].job_id, id);
    EXPECT_EQ(chunks[i].kind, serve::ChunkKind::kMetrics);
    EXPECT_FALSE(chunks[i].payload.empty());
  }

  // from_seq skips the replayed prefix.
  std::size_t tail = 0;
  conn.stream(id, 2, [&tail](const ChunkMsg&) { ++tail; });
  EXPECT_EQ(tail, chunks.size() - 2);

  pool.shutdown_and_join();
}

TEST_P(ServiceProtocolTest, CancelRunningJobAndPoolSurvives) {
  ServicePool pool(GetParam(), 3);
  ClientConnection conn("127.0.0.1", pool.client_port());

  const auto id = submit_config(
      conn, lj_job(/*steps=*/2000000, /*ranks=*/2, /*atoms=*/256,
                   "metrics_every = 1000\n"));
  ASSERT_EQ(wait_started(conn, id).state, JobState::kRunning);
  conn.cancel(id);
  const JobStatus st = wait_terminal(conn, id);
  EXPECT_EQ(st.state, JobState::kCancelled);
  EXPECT_TRUE(st.pool_ranks.empty());

  // The pool keeps serving: the freed ranks run the next job.
  const auto next = submit_config(conn, lj_job(/*steps=*/3));
  EXPECT_EQ(wait_terminal(conn, next).state, JobState::kDone);

  pool.shutdown_and_join();
}

/// The acceptance scenario: one warm pool, two jobs running
/// side-by-side on disjoint rank subsets, a queued job cancelled, both
/// runners cancelled, and the pool still serving afterwards — no
/// restart anywhere.
TEST_P(ServiceProtocolTest, ConcurrentJobsSpaceShareThePool) {
  ServicePool pool(GetParam(), 5);  // 4 workers
  ClientConnection conn("127.0.0.1", pool.client_port());

  const std::string long_job = lj_job(
      /*steps=*/2000000, /*ranks=*/2, /*atoms=*/256, "metrics_every = 1000\n");
  const auto a = submit_config(conn, long_job);
  const auto b = submit_config(conn, long_job);
  const JobStatus sa = wait_started(conn, a);
  const JobStatus sb = wait_started(conn, b);
  ASSERT_EQ(sa.state, JobState::kRunning);
  ASSERT_EQ(sb.state, JobState::kRunning);
  // Disjoint subsets: space sharing, not time sharing.
  for (const int ra : sa.pool_ranks) {
    for (const int rb : sb.pool_ranks) EXPECT_NE(ra, rb);
  }

  // No free ranks left: a third job queues, and a queued cancel is
  // immediate.
  const auto c = submit_config(conn, long_job);
  EXPECT_EQ(conn.poll(c).state, JobState::kQueued);
  EXPECT_EQ(conn.cancel(c).state, JobState::kCancelled);

  conn.cancel(a);
  conn.cancel(b);
  EXPECT_EQ(wait_terminal(conn, a).state, JobState::kCancelled);
  EXPECT_EQ(wait_terminal(conn, b).state, JobState::kCancelled);

  const auto d = submit_config(conn, lj_job(/*steps=*/3));
  EXPECT_EQ(wait_terminal(conn, d).state, JobState::kDone);

  const std::string table = conn.jobs();
  EXPECT_NE(table.find("\"jobs\":["), std::string::npos) << table;
  EXPECT_NE(table.find("\"state\":\"done\""), std::string::npos) << table;
  EXPECT_NE(table.find("\"state\":\"cancelled\""), std::string::npos)
      << table;

  pool.shutdown_and_join();
}

TEST_P(ServiceProtocolTest, WalltimeCapFailsTheJob) {
  ServicePool pool(GetParam(), 3);
  ClientConnection conn("127.0.0.1", pool.client_port());

  const auto id = submit_config(
      conn, lj_job(/*steps=*/2000000, /*ranks=*/2, /*atoms=*/256,
                   "metrics_every = 1000\nwalltime_s = 0.2\n"));
  const JobStatus st = wait_terminal(conn, id);
  EXPECT_EQ(st.state, JobState::kFailed);
  EXPECT_NE(st.error.find("walltime"), std::string::npos) << st.error;

  // A failed job is isolated: the pool serves the next one.
  const auto next = submit_config(conn, lj_job(/*steps=*/3));
  EXPECT_EQ(wait_terminal(conn, next).state, JobState::kDone);

  pool.shutdown_and_join();
}

TEST_P(ServiceProtocolTest, SubmitRejectsBadConfigs) {
  ServicePool pool(GetParam(), 3);
  ClientConnection conn("127.0.0.1", pool.client_port());

  // Unknown field, unknown key, bad rank demand: all kError replies
  // that leave the connection usable.
  EXPECT_THROW(submit_config(conn, "field = nosuch\n"), Error);
  EXPECT_THROW(submit_config(conn, "field = lj\nbogus_key = 1\n"), Error);
  EXPECT_THROW(submit_config(conn, lj_job(5, /*ranks=*/9)), Error);
  EXPECT_THROW(submit_config(conn, lj_job(5, /*ranks=*/1)), Error);
  // Resume needs a daemon dir (this pool has none).
  EXPECT_THROW(
      submit_config(conn, lj_job(5), 0, false, /*resume_job=*/1), Error);
  // Unknown job ids.
  EXPECT_THROW(conn.poll(12345), Error);

  const auto id = submit_config(conn, lj_job(/*steps=*/3));
  EXPECT_EQ(wait_terminal(conn, id).state, JobState::kDone);

  pool.shutdown_and_join();
}

TEST_P(ServiceProtocolTest, ResourceCapsRejectOversizedJobs) {
  serve::DaemonConfig cfg;
  cfg.limits.max_atoms = 100;
  cfg.limits.max_steps = 50;
  ServicePool pool(GetParam(), 3, cfg);
  ClientConnection conn("127.0.0.1", pool.client_port());

  try {
    submit_config(conn, lj_job(/*steps=*/5, /*ranks=*/2, /*atoms=*/256));
    FAIL() << "atom cap not enforced";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("atom"), std::string::npos)
        << e.what();
  }
  try {
    submit_config(conn, lj_job(/*steps=*/500, /*ranks=*/2, /*atoms=*/64));
    FAIL() << "step cap not enforced";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("step"), std::string::npos)
        << e.what();
  }

  const auto ok = submit_config(conn, lj_job(/*steps=*/3, 2, /*atoms=*/64));
  EXPECT_EQ(wait_terminal(conn, ok).state, JobState::kDone);

  pool.shutdown_and_join();
}

TEST_P(ServiceProtocolTest, ResumeByJobId) {
  serve::DaemonConfig cfg;
  cfg.dir = make_temp_dir();
  ServicePool pool(GetParam(), 3, cfg);
  ClientConnection conn("127.0.0.1", pool.client_port());

  const std::string config =
      lj_job(/*steps=*/4, 2, 256, "checkpoint_every = 2\n");
  const auto first = submit_config(conn, config);
  ASSERT_EQ(wait_terminal(conn, first).state, JobState::kDone);

  // Resume extends the original job's snapshot lineage: the second job
  // restores the newest snapshot and finishes the same step budget.
  const auto resumed =
      submit_config(conn, config, 0, false, /*resume_job=*/first);
  const JobStatus st = wait_terminal(conn, resumed);
  EXPECT_EQ(st.state, JobState::kDone);
  EXPECT_EQ(st.steps_done, 4);

  // Resuming a job that never checkpointed is a submit-time reject.
  const auto plain = submit_config(conn, lj_job(/*steps=*/2));
  ASSERT_EQ(wait_terminal(conn, plain).state, JobState::kDone);
  EXPECT_THROW(submit_config(conn, config, 0, false, /*resume_job=*/999),
               Error);

  pool.shutdown_and_join();
}

TEST_P(ServiceProtocolTest, MalformedFramesGetErrorRepliesNotCrashes) {
  ServicePool pool(GetParam(), 3);

  {
    // Garbage magic: kError reply, connection dropped.
    const int fd = raw_connect(pool.client_port());
    const std::uint32_t len = 8;
    const unsigned char junk[8] = {0xAB, 0xAB, 0xAB, 0xAB,
                                   0xAB, 0xAB, 0xAB, 0xAB};
    send_all(fd, &len, sizeof(len));
    send_all(fd, junk, sizeof(junk));
    Bytes payload;
    ASSERT_TRUE(serve::read_frame_payload(fd, &payload));
    EXPECT_EQ(serve::decode_frame(payload).type, MsgType::kError);
    EXPECT_FALSE(serve::read_frame_payload(fd, &payload));  // dropped
    ::close(fd);
  }
  {
    // Oversized announced length: unresynchronizable, kError + drop.
    const int fd = raw_connect(pool.client_port());
    const std::uint32_t huge = serve::kMaxFrameBytes + 1;
    send_all(fd, &huge, sizeof(huge));
    Bytes payload;
    ASSERT_TRUE(serve::read_frame_payload(fd, &payload));
    EXPECT_EQ(serve::decode_frame(payload).type, MsgType::kError);
    ::close(fd);
  }
  {
    // Well-formed frame of an unexpected type: kError, connection kept.
    const int fd = raw_connect(pool.client_port());
    ASSERT_TRUE(
        serve::write_frame(fd, MsgType::kStatus, serve::encode_status({})));
    Bytes payload;
    ASSERT_TRUE(serve::read_frame_payload(fd, &payload));
    EXPECT_EQ(serve::decode_frame(payload).type, MsgType::kError);
    ASSERT_TRUE(serve::write_frame(fd, MsgType::kJobs, Bytes{}));
    ASSERT_TRUE(serve::read_frame_payload(fd, &payload));
    EXPECT_EQ(serve::decode_frame(payload).type, MsgType::kJobsInfo);
    ::close(fd);
  }

  // None of it hurt the daemon: a real client still gets served.
  ClientConnection conn("127.0.0.1", pool.client_port());
  const auto id = submit_config(conn, lj_job(/*steps=*/3));
  EXPECT_EQ(wait_terminal(conn, id).state, JobState::kDone);

  pool.shutdown_and_join();
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceProtocolTest,
                         ::testing::Values(Backend::kInProc, Backend::kTcp),
                         backend_name);

}  // namespace
}  // namespace scmd::serve_test
