// Client-disconnect isolation (docs/SERVICE.md): a client that
// vanishes mid-stream cancels *its* job and nothing else — the daemon
// keeps running, the freed ranks go back in the pool, and the next
// submit is served by the same warm pool.  Regression for the
// "one flaky client restarts the whole service" failure mode.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "pool_harness.hpp"
#include "serve/client.hpp"
#include "support/error.hpp"

namespace scmd::serve_test {
namespace {

using serve::ClientConnection;
using serve::JobState;
using serve::JobStatus;
using serve::SubmitRequest;

class ClientDisconnectTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ClientDisconnectTest, MidStreamDisconnectCancelsOnlyThatJob) {
  ServicePool pool(GetParam(), 3);  // 2 workers

  // Victim client: submits a long job and follows its stream.
  ClientConnection victim("127.0.0.1", pool.client_port());
  SubmitRequest req;
  req.config_text = lj_job(/*steps=*/2000000, /*ranks=*/2, /*atoms=*/256,
                           "metrics_every = 200\n");
  const std::int64_t id = victim.submit(req);

  std::atomic<bool> saw_chunk{false};
  std::thread streamer([&victim, &saw_chunk, id] {
    try {
      victim.stream(id, 0, [&saw_chunk](const serve::ChunkMsg&) {
        saw_chunk.store(true);
      });
    } catch (const Error&) {
      // Expected: the socket under the stream gets hard-closed.
    }
  });

  // Wait until the stream is live, then vanish: disconnect() severs
  // the socket under the blocked reader; close() must wait for the
  // join (see client.hpp).
  while (!saw_chunk.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(5));
  victim.disconnect();
  streamer.join();
  victim.close();

  // A second client watches the fallout: the victim's job — and only
  // that job — ends cancelled, with the disconnect named as the reason.
  ClientConnection observer("127.0.0.1", pool.client_port());
  const JobStatus st = wait_terminal(observer, id);
  EXPECT_EQ(st.state, JobState::kCancelled);
  EXPECT_NE(st.error.find("disconnected"), std::string::npos) << st.error;

  // The pool survived and re-serves on the freed ranks.
  SubmitRequest next;
  next.config_text = lj_job(/*steps=*/3);
  const std::int64_t id2 = observer.submit(next);
  EXPECT_EQ(wait_terminal(observer, id2).state, JobState::kDone);

  pool.shutdown_and_join();
}

/// A disconnect while another job runs: the unrelated job is untouched.
TEST_P(ClientDisconnectTest, UnrelatedJobsKeepRunning) {
  ServicePool pool(GetParam(), 5);  // 4 workers: two 2-rank jobs

  ClientConnection keeper("127.0.0.1", pool.client_port());
  SubmitRequest keep_req;
  keep_req.config_text = lj_job(/*steps=*/2000000, /*ranks=*/2, /*atoms=*/256,
                                "metrics_every = 200\n");
  const std::int64_t keep_id = keeper.submit(keep_req);
  ASSERT_EQ(wait_started(keeper, keep_id).state, JobState::kRunning);

  ClientConnection victim("127.0.0.1", pool.client_port());
  const std::int64_t drop_id = victim.submit(keep_req);
  std::atomic<bool> saw_chunk{false};
  std::thread streamer([&victim, &saw_chunk, drop_id] {
    try {
      victim.stream(drop_id, 0, [&saw_chunk](const serve::ChunkMsg&) {
        saw_chunk.store(true);
      });
    } catch (const Error&) {
    }
  });
  while (!saw_chunk.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(5));
  victim.disconnect();
  streamer.join();
  victim.close();

  EXPECT_EQ(wait_terminal(keeper, drop_id).state, JobState::kCancelled);
  // The unrelated job never left the running state.
  EXPECT_EQ(keeper.poll(keep_id).state, JobState::kRunning);
  keeper.cancel(keep_id);
  EXPECT_EQ(wait_terminal(keeper, keep_id).state, JobState::kCancelled);

  pool.shutdown_and_join();
}

INSTANTIATE_TEST_SUITE_P(Backends, ClientDisconnectTest,
                         ::testing::Values(Backend::kInProc, Backend::kTcp),
                         backend_name);

}  // namespace
}  // namespace scmd::serve_test
