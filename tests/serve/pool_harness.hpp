#pragma once

// Warm-pool harness for the service tests (docs/SERVICE.md): boots a
// ServeDaemon on pool rank 0 plus serve::run_worker on ranks 1..P-1,
// over either the in-process cluster or a loopback TCP mesh — the
// transport-semantics harness shape (tests/net/transport_semantics_
// test.cpp), with a daemon instead of a test body on rank 0.  Tests
// talk to the daemon through serve::ClientConnection against its real
// client socket, so the whole wire path runs even for the inproc pool.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/worker.hpp"
#include "support/error.hpp"

namespace scmd::serve_test {

enum class Backend { kInProc, kTcp };

inline std::string backend_name(
    const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kInProc ? "InProc" : "Tcp";
}

/// One warm pool: `pool_ranks` total ranks, rank 0 the daemon.  The
/// constructor blocks until the daemon's client port is bound.  Tests
/// end with shutdown() + join() so rank-thread exceptions propagate;
/// the destructor is a best-effort fallback that cannot throw.
class ServicePool {
 public:
  ServicePool(Backend backend, int pool_ranks,
              serve::DaemonConfig cfg = serve::DaemonConfig{}) {
    const int P = pool_ranks;
    errors_.resize(static_cast<std::size_t>(P));
    std::promise<int> port_promise;
    std::future<int> port_ready = port_promise.get_future();
    int rendezvous_fd = -1;
    int rendezvous_port = 0;
    if (backend == Backend::kInProc) {
      cluster_ = std::make_unique<Cluster>(P);
    } else {
      std::tie(rendezvous_fd, rendezvous_port) =
          bind_listener("127.0.0.1", 0);
    }
    for (int r = 0; r < P; ++r) {
      threads_.emplace_back([this, backend, P, r, cfg, rendezvous_fd,
                             rendezvous_port, &port_promise] {
        try {
          if (backend == Backend::kInProc) {
            run_rank(r, cluster_->transport(r), cfg, port_promise);
          } else {
            TcpConfig tc;
            tc.rank = r;
            tc.num_ranks = P;
            tc.rendezvous_port = rendezvous_port;
            if (r == 0) tc.rendezvous_fd = rendezvous_fd;
            // A warm pool idles between jobs: never time out pool recvs
            // (dead peers are still detected by socket state).
            tc.recv_timeout_s = 0.0;
            TcpTransport transport(tc);
            run_rank(r, transport, cfg, port_promise);
          }
        } catch (...) {
          errors_[static_cast<std::size_t>(r)] = std::current_exception();
          if (r == 0) {
            try {
              port_promise.set_exception(std::current_exception());
            } catch (const std::future_error&) {
              // The port was already delivered; keep the error for
              // join() instead.
            }
          }
        }
      });
    }
    port_ = port_ready.get();
  }

  ~ServicePool() {
    if (joined_) return;
    try {
      shutdown();
    } catch (...) {
      // The daemon may already be gone; joining is all that's left.
    }
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  ServicePool(const ServicePool&) = delete;
  ServicePool& operator=(const ServicePool&) = delete;

  int client_port() const { return port_; }

  /// Ask the daemon to drain via a throwaway client connection.
  void shutdown() {
    serve::ClientConnection conn("127.0.0.1", port_);
    conn.shutdown();
  }

  /// Join every pool rank and rethrow the first rank failure.
  void join() {
    if (joined_) return;
    joined_ = true;
    for (std::thread& t : threads_) t.join();
    for (const std::exception_ptr& e : errors_) {
      if (e) std::rethrow_exception(e);
    }
  }

  void shutdown_and_join() {
    shutdown();
    join();
  }

 private:
  template <class PortPromise>
  void run_rank(int r, Transport& transport, const serve::DaemonConfig& cfg,
                PortPromise& port_promise) {
    if (r == 0) {
      serve::ServeDaemon daemon(transport, cfg);
      port_promise.set_value(daemon.client_port());
      daemon.run();
    } else {
      serve::run_worker(transport);
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> errors_;
  int port_ = 0;
  bool joined_ = false;
};

/// A small LJ gas job config (serve/runplan.hpp key set).
inline std::string lj_job(int steps, int ranks = 2, int atoms = 256,
                          const std::string& extra = "") {
  std::ostringstream out;
  out << "field = lj\n"
      << "atoms = " << atoms << "\n"
      << "steps = " << steps << "\n"
      << "ranks = " << ranks << "\n"
      << "seed = 11\n"
      // Conservative timestep: the default dt diverges this hot random
      // gas within ~60 steps, and a diverged job now fails collectively
      // (rank_engine divergence gate) instead of running long — the
      // cancel/disconnect tests need jobs that genuinely keep going.
      << "dt_fs = 0.1\n"
      << extra;
  return out.str();
}

/// Poll until the job reaches a terminal state.
inline serve::JobStatus wait_terminal(serve::ClientConnection& conn,
                                      std::int64_t job_id,
                                      double timeout_s = 180.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const serve::JobStatus st = conn.poll(job_id);
    if (serve::job_state_terminal(st.state)) return st;
    SCMD_REQUIRE(std::chrono::steady_clock::now() < deadline,
                 "job " + std::to_string(job_id) +
                     " did not reach a terminal state in time");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Poll until the job leaves the queue (running or terminal).
inline serve::JobStatus wait_started(serve::ClientConnection& conn,
                                     std::int64_t job_id,
                                     double timeout_s = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const serve::JobStatus st = conn.poll(job_id);
    if (st.state != serve::JobState::kQueued) return st;
    SCMD_REQUIRE(std::chrono::steady_clock::now() < deadline,
                 "job " + std::to_string(job_id) + " never started");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Fresh scratch directory for daemon job artifacts.
inline std::string make_temp_dir() {
  std::string tmpl = "/tmp/scmd_serve_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  SCMD_REQUIRE(dir != nullptr, "mkdtemp failed");
  return std::string(dir);
}

}  // namespace scmd::serve_test
