// Daemon-vs-direct parity (docs/SERVICE.md acceptance): a job served
// through the warm pool must be bit-for-bit the run `scmd_run` would
// have produced for the same config.  Both paths share
// serve/runplan.hpp (same RNG consumption, same initial state) and the
// same per-rank driver, so the final checkpoint chunk the daemon
// streams must decode to *exactly* the positions and velocities of an
// in-process run_parallel_md at the identical config — zero tolerance.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "parallel/decomp.hpp"
#include "parallel/parallel_engine.hpp"
#include "pool_harness.hpp"
#include "serve/client.hpp"
#include "serve/runplan.hpp"
#include "support/config.hpp"

namespace scmd::serve_test {
namespace {

using serve::ChunkMsg;
using serve::ClientConnection;
using serve::JobState;
using serve::SubmitRequest;

void expect_bitwise_equal(const ParticleSystem& got,
                          const ParticleSystem& want) {
  ASSERT_EQ(got.num_atoms(), want.num_atoms());
  const auto gp = got.positions();
  const auto wp = want.positions();
  const auto gv = got.velocities();
  const auto wv = want.velocities();
  for (int i = 0; i < got.num_atoms(); ++i) {
    EXPECT_EQ(gp[i].x, wp[i].x) << "pos.x of atom " << i;
    EXPECT_EQ(gp[i].y, wp[i].y) << "pos.y of atom " << i;
    EXPECT_EQ(gp[i].z, wp[i].z) << "pos.z of atom " << i;
    EXPECT_EQ(gv[i].x, wv[i].x) << "vel.x of atom " << i;
    EXPECT_EQ(gv[i].y, wv[i].y) << "vel.y of atom " << i;
    EXPECT_EQ(gv[i].z, wv[i].z) << "vel.z of atom " << i;
    if (gp[i].x != wp[i].x) break;  // one atom's diff is enough output
  }
  EXPECT_EQ(got.types().size(), want.types().size());
}

void check_parity(const std::string& config_text) {
  // Daemon path: submit with want_checkpoint and capture the final
  // checkpoint chunk off the stream.
  ServicePool pool(Backend::kInProc, 3);
  ClientConnection conn("127.0.0.1", pool.client_port());
  SubmitRequest req;
  req.config_text = config_text;
  req.want_checkpoint = true;
  const std::int64_t id = conn.submit(req);

  Bytes ckpt_payload;
  std::int64_t ckpt_step = -1;
  const serve::StreamEnd end =
      conn.stream(id, 0, [&ckpt_payload, &ckpt_step](const ChunkMsg& c) {
        if (c.kind == serve::ChunkKind::kCheckpoint) {
          ckpt_payload = c.payload;
          ckpt_step = c.step;
        }
      });
  ASSERT_EQ(end.state, JobState::kDone) << end.error;
  ASSERT_FALSE(ckpt_payload.empty()) << "no checkpoint chunk streamed";
  pool.shutdown_and_join();

  const ckpt::CheckpointData served = ckpt::decode_checkpoint(ckpt_payload);

  // Direct path: the exact scmd_run recipe — the shared runplan helpers
  // build the initial state, the same driver runs it.
  serve::JobPlan plan = serve::build_job_plan(Config::parse(config_text));
  ParticleSystem reference = std::move(*plan.system);
  ParallelRunConfig pcfg;
  pcfg.dt = plan.dt;
  pcfg.num_steps = plan.steps;
  pcfg.tuple_cache = plan.tuple_cache;
  pcfg.make_balancer = plan.make_balancer;
  pcfg.metrics_every = plan.metrics_every;
  const ParallelRunResult res =
      run_parallel_md(reference, *plan.field, plan.strategy,
                      ProcessGrid::factor(plan.ranks), pcfg);

  EXPECT_EQ(ckpt_step, plan.steps);
  EXPECT_EQ(served.clock.step, plan.steps);
  expect_bitwise_equal(served.system, reference);
  EXPECT_TRUE(std::isfinite(res.potential_energy));
}

TEST(DaemonParityTest, LjGasMatchesDirectRunBitForBit) {
  check_parity(lj_job(/*steps=*/6, /*ranks=*/2, /*atoms=*/256));
}

TEST(DaemonParityTest, SilicaMatchesDirectRunBitForBit) {
  // The seed scenario: Vashishta silica, the paper's workload.
  check_parity(
      "field = vashishta\n"
      "atoms = 192\n"
      "steps = 4\n"
      "ranks = 2\n"
      "seed = 3\n"
      "dt_fs = 1.0\n");
}

}  // namespace
}  // namespace scmd::serve_test
