// Wire grammar of the MD-as-a-service protocols (serve/protocol.hpp):
// every body codec round-trips, and malformed frames — bad magic,
// unknown type, truncation, trailing bytes, oversized length prefix —
// are scmd::Error at decode time, never a crash or a misparse.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace scmd::serve {
namespace {

Bytes bytes_of(const std::string& s) {
  Bytes out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(ServeProtocolTest, FrameRoundTrip) {
  SubmitRequest req;
  req.config_text = "field = lj\nsteps = 5\n";
  req.priority = 3;
  req.want_checkpoint = true;
  req.resume_job = 17;
  const Bytes payload = encode_frame(MsgType::kSubmit, encode_submit(req));
  const Frame frame = decode_frame(payload);
  EXPECT_EQ(frame.type, MsgType::kSubmit);
  const SubmitRequest back = decode_submit(frame.body);
  EXPECT_EQ(back.config_text, req.config_text);
  EXPECT_EQ(back.priority, 3);
  EXPECT_TRUE(back.want_checkpoint);
  EXPECT_EQ(back.resume_job, 17);
}

TEST(ServeProtocolTest, DecodeFrameRejectsBadMagic) {
  Bytes payload = encode_frame(MsgType::kPoll, encode_job_id(1));
  payload[0] = std::byte{0xAA};
  EXPECT_THROW(decode_frame(payload), Error);
}

TEST(ServeProtocolTest, DecodeFrameRejectsUnknownType) {
  Bytes payload = encode_frame(MsgType::kPoll, encode_job_id(1));
  // The u16 type sits right after the u32 magic.
  payload[4] = std::byte{0xFF};
  payload[5] = std::byte{0xFF};
  EXPECT_THROW(decode_frame(payload), Error);
}

TEST(ServeProtocolTest, DecodeFrameRejectsShortPayload) {
  EXPECT_THROW(decode_frame(Bytes(3)), Error);
  EXPECT_THROW(decode_frame(Bytes{}), Error);
}

TEST(ServeProtocolTest, DecodeBodyRejectsTruncation) {
  const Bytes body = encode_status([] {
    JobStatus st;
    st.job_id = 9;
    st.state = JobState::kRunning;
    st.pool_ranks = {1, 2, 3};
    return st;
  }());
  Bytes cut(body.begin(), body.end() - 1);
  EXPECT_THROW(decode_status(cut), Error);
}

TEST(ServeProtocolTest, DecodeBodyRejectsTrailingBytes) {
  Bytes body = encode_job_id(42);
  body.push_back(std::byte{0});
  EXPECT_THROW(decode_job_id(body), Error);
}

TEST(ServeProtocolTest, StatusRoundTrip) {
  JobStatus st;
  st.job_id = 5;
  st.state = JobState::kFailed;
  st.error = "boom \"quoted\"";
  st.steps_done = 40;
  st.steps_total = 100;
  st.chunks = 41;
  st.potential_energy = -1.25;
  st.steps_per_sec = 123.5;
  st.pool_ranks = {2, 4};
  const JobStatus back = decode_status(encode_status(st));
  EXPECT_EQ(back.job_id, 5);
  EXPECT_EQ(back.state, JobState::kFailed);
  EXPECT_EQ(back.error, st.error);
  EXPECT_EQ(back.steps_done, 40);
  EXPECT_EQ(back.steps_total, 100);
  EXPECT_EQ(back.chunks, 41);
  EXPECT_DOUBLE_EQ(back.potential_energy, -1.25);
  EXPECT_DOUBLE_EQ(back.steps_per_sec, 123.5);
  EXPECT_EQ(back.pool_ranks, (std::vector<std::int32_t>{2, 4}));
}

TEST(ServeProtocolTest, ChunkAndStreamRoundTrips) {
  ChunkMsg chunk;
  chunk.job_id = 7;
  chunk.seq = 12;
  chunk.kind = ChunkKind::kCheckpoint;
  chunk.step = 99;
  chunk.payload = bytes_of("binary\0payload");
  const ChunkMsg back = decode_chunk(encode_chunk(chunk));
  EXPECT_EQ(back.job_id, 7);
  EXPECT_EQ(back.seq, 12);
  EXPECT_EQ(back.kind, ChunkKind::kCheckpoint);
  EXPECT_EQ(back.step, 99);
  EXPECT_EQ(back.payload, chunk.payload);

  StreamRequest req;
  req.job_id = 7;
  req.from_seq = 3;
  const StreamRequest rback = decode_stream_req(encode_stream_req(req));
  EXPECT_EQ(rback.job_id, 7);
  EXPECT_EQ(rback.from_seq, 3);

  StreamEnd end;
  end.job_id = 7;
  end.state = JobState::kCancelled;
  end.error = "cancelled by client";
  const StreamEnd eback = decode_stream_end(encode_stream_end(end));
  EXPECT_EQ(eback.job_id, 7);
  EXPECT_EQ(eback.state, JobState::kCancelled);
  EXPECT_EQ(eback.error, "cancelled by client");
}

TEST(ServeProtocolTest, TextAndErrorRoundTrips) {
  EXPECT_EQ(decode_error(encode_error("unknown job 9")), "unknown job 9");
  EXPECT_EQ(decode_text(encode_text("{\"jobs\":[]}")), "{\"jobs\":[]}");
}

TEST(ServeProtocolTest, AssignmentRoundTrip) {
  JobAssignment a;
  a.job_id = 21;
  a.config_text = "field = lj\n";
  a.pool_ranks = {3, 1, 5};
  a.want_telemetry = false;
  a.want_checkpoint = true;
  a.ckpt_dir = "/tmp/jobs/21/ckpt";
  a.checkpoint_every = 4;
  a.restore = true;
  a.trace_path = "/tmp/jobs/21/trace.json";
  a.walltime_s = 12.5;
  a.metrics_every = 2;
  const JobAssignment back = decode_assignment(encode_assignment(a));
  EXPECT_FALSE(back.shutdown);
  EXPECT_EQ(back.job_id, 21);
  EXPECT_EQ(back.config_text, a.config_text);
  EXPECT_EQ(back.pool_ranks, a.pool_ranks);
  EXPECT_FALSE(back.want_telemetry);
  EXPECT_TRUE(back.want_checkpoint);
  EXPECT_EQ(back.ckpt_dir, a.ckpt_dir);
  EXPECT_EQ(back.checkpoint_every, 4);
  EXPECT_TRUE(back.restore);
  EXPECT_EQ(back.trace_path, a.trace_path);
  EXPECT_DOUBLE_EQ(back.walltime_s, 12.5);
  EXPECT_EQ(back.metrics_every, 2);

  JobAssignment bye;
  bye.shutdown = true;
  EXPECT_TRUE(decode_assignment(encode_assignment(bye)).shutdown);
}

TEST(ServeProtocolTest, CtrlAndUpRoundTrips) {
  CtrlMsg ctrl;
  ctrl.job_id = 4;
  ctrl.action = CtrlAction::kCancel;
  const CtrlMsg cback = decode_ctrl(encode_ctrl(ctrl));
  EXPECT_EQ(cback.job_id, 4);
  EXPECT_EQ(cback.action, CtrlAction::kCancel);

  UpMsg up;
  up.kind = UpKind::kResult;
  up.job_id = 4;
  up.failed = true;
  up.cancelled = false;
  up.error = "walltime cap exceeded after 3 step(s)";
  up.potential_energy = -2.5;
  up.steps_completed = 3;
  up.steps_total = 100;
  const UpMsg uback = decode_up(encode_up(up));
  EXPECT_EQ(uback.kind, UpKind::kResult);
  EXPECT_EQ(uback.job_id, 4);
  EXPECT_TRUE(uback.failed);
  EXPECT_FALSE(uback.cancelled);
  EXPECT_EQ(uback.error, up.error);
  EXPECT_DOUBLE_EQ(uback.potential_energy, -2.5);
  EXPECT_EQ(uback.steps_completed, 3);
  EXPECT_EQ(uback.steps_total, 100);

  UpMsg chunk;
  chunk.kind = UpKind::kChunk;
  chunk.job_id = 4;
  chunk.chunk_kind = ChunkKind::kMetrics;
  chunk.step = 8;
  chunk.payload = bytes_of("{\"step\":8}\n");
  const UpMsg chback = decode_up(encode_up(chunk));
  EXPECT_EQ(chback.kind, UpKind::kChunk);
  EXPECT_EQ(chback.chunk_kind, ChunkKind::kMetrics);
  EXPECT_EQ(chback.step, 8);
  EXPECT_EQ(chback.payload, chunk.payload);
}

/// Socket framing over a socketpair: round trip, clean EOF, and the
/// unresynchronizable oversized length prefix.
TEST(ServeProtocolTest, SocketFraming) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  ASSERT_TRUE(write_frame(fds[0], MsgType::kPoll, encode_job_id(33)));
  Bytes payload;
  ASSERT_TRUE(read_frame_payload(fds[1], &payload));
  const Frame frame = decode_frame(payload);
  EXPECT_EQ(frame.type, MsgType::kPoll);
  EXPECT_EQ(decode_job_id(frame.body), 33);

  // Clean EOF: false, no throw.
  ::shutdown(fds[0], SHUT_WR);
  EXPECT_FALSE(read_frame_payload(fds[1], &payload));
  ::close(fds[0]);
  ::close(fds[1]);

  // Oversized announced length: protocol violation, throws.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  ASSERT_EQ(::send(fds[0], &huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW(read_frame_payload(fds[1], &payload), Error);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocolTest, StateNamesAndTerminality) {
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(job_state_name(JobState::kDone), "done");
  EXPECT_STREQ(job_state_name(JobState::kFailed), "failed");
  EXPECT_STREQ(job_state_name(JobState::kCancelled), "cancelled");
  EXPECT_FALSE(job_state_terminal(JobState::kQueued));
  EXPECT_FALSE(job_state_terminal(JobState::kRunning));
  EXPECT_TRUE(job_state_terminal(JobState::kDone));
  EXPECT_TRUE(job_state_terminal(JobState::kFailed));
  EXPECT_TRUE(job_state_terminal(JobState::kCancelled));
}

}  // namespace
}  // namespace scmd::serve
