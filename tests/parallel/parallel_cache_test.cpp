// Persistent tuple lists under message passing (docs/TUPLECACHE.md): the
// 8-rank cached run — collective reuse decision, ghost position refresh
// over the recorded import stages, frozen slot tables per rank — must
// reproduce the serial engine, including across a load-balance re-cut
// (apply_decomposition forces a rebuild).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

struct Reference {
  double energy;
  std::vector<Vec3> pos, force;
};

Reference serial_reference(const ParticleSystem& initial,
                           const ForceField& field,
                           const std::string& strategy, double dt,
                           int steps) {
  ParticleSystem sys = initial;
  SerialEngineConfig cfg;
  cfg.dt = dt;
  SerialEngine engine(sys, field, make_strategy(strategy, field), cfg);
  for (int s = 0; s < steps; ++s) engine.step();
  Reference ref;
  ref.energy = engine.potential_energy();
  ref.pos.assign(sys.positions().begin(), sys.positions().end());
  ref.force.assign(sys.forces().begin(), sys.forces().end());
  return ref;
}

void expect_matches(const ParticleSystem& sys, const Reference& ref,
                    double energy, const char* label) {
  EXPECT_NEAR(energy, ref.energy, 1e-8 * std::abs(ref.energy) + 1e-8)
      << label;
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    EXPECT_NEAR(sys.positions()[i].x, ref.pos[ii].x, 1e-8) << label << i;
    EXPECT_NEAR(sys.positions()[i].y, ref.pos[ii].y, 1e-8) << label << i;
    EXPECT_NEAR(sys.positions()[i].z, ref.pos[ii].z, 1e-8) << label << i;
    EXPECT_NEAR(sys.forces()[i].x, ref.force[ii].x, 1e-7) << label << i;
    EXPECT_NEAR(sys.forces()[i].y, ref.force[ii].y, 1e-7) << label << i;
    EXPECT_NEAR(sys.forces()[i].z, ref.force[ii].z, 1e-7) << label << i;
  }
}

class ParallelCacheTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelCacheTest, EightRankCachedRunMatchesSerial) {
  const std::string strategy = GetParam();
  Rng rng(320);
  const ParticleSystem initial = make_silica(2400, 2.2, 400.0, rng);
  const VashishtaSiO2 field;
  const double dt = 1.0 * units::kFemtosecond;
  const int steps = 6;

  const Reference ref =
      serial_reference(initial, field, strategy, dt, steps);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = dt;
  cfg.num_steps = steps;
  cfg.tuple_cache.enabled = true;
  // Narrow skin: the 6-step window spans at least one mid-run rebuild
  // while still replaying on the steps in between.
  cfg.tuple_cache.skin = 0.05;
  const ParallelRunResult res =
      run_parallel_md(sys, field, strategy, ProcessGrid({2, 2, 2}), cfg);

  // The decision is collective, so per-rank counts agree and the max
  // over ranks is the cluster-wide event count.
  EXPECT_GE(res.max_rank.cache_rebuilds, 2u);
  EXPECT_GE(res.max_rank.cache_reuse_steps, 1u);
  EXPECT_GT(res.total.cache_replayed, 0u);

  expect_matches(sys, ref, res.potential_energy, "atom ");
}

INSTANTIATE_TEST_SUITE_P(Strategies, ParallelCacheTest,
                         ::testing::Values("SC", "FS"),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

TEST(ParallelCacheTest, CachedRunSurvivesLoadBalanceRecut) {
  Rng rng(321);
  const ParticleSystem initial = make_silica(2400, 2.2, 400.0, rng);
  const VashishtaSiO2 field;
  const double dt = 1.0 * units::kFemtosecond;
  const int steps = 6;

  const Reference ref = serial_reference(initial, field, "SC", dt, steps);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = dt;
  cfg.num_steps = steps;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = 0.05;
  BalanceConfig bc;
  // Re-cut on every rebuild step (cache reuse freezes the cuts, so the
  // balancer only runs when the lists rebuild anyway).
  bc.mode = BalanceConfig::Mode::kEvery;
  bc.every = 1;
  cfg.make_balancer = make_rebalancer_factory(bc);
  const ParallelRunResult res =
      run_parallel_md(sys, field, "SC", ProcessGrid({2, 2, 2}), cfg);

  // The run must have re-cut at least once AND replayed at least once
  // after a re-cut-induced rebuild.
  EXPECT_GE(res.rebalances, 1);
  EXPECT_GE(res.max_rank.cache_rebuilds, 2u);
  EXPECT_GE(res.max_rank.cache_reuse_steps, 1u);

  expect_matches(sys, ref, res.potential_energy, "atom ");
}

TEST(ParallelCacheTest, ZeroSkinMatchesUncachedCounters) {
  Rng rng(322);
  const ParticleSystem initial = make_silica(2400, 2.2, 400.0, rng);
  const VashishtaSiO2 field;
  const double dt = 1.0 * units::kFemtosecond;
  const int steps = 3;

  const Reference ref = serial_reference(initial, field, "SC", dt, steps);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = dt;
  cfg.num_steps = steps;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = 0.0;
  const ParallelRunResult res =
      run_parallel_md(sys, field, "SC", ProcessGrid({2, 2, 2}), cfg);

  EXPECT_EQ(res.max_rank.cache_rebuilds,
            static_cast<std::uint64_t>(steps) + 1);
  EXPECT_EQ(res.max_rank.cache_reuse_steps, 0u);

  expect_matches(sys, ref, res.potential_energy, "atom ");
}

}  // namespace
}  // namespace scmd
