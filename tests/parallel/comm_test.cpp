#include "parallel/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "support/error.hpp"

namespace scmd {
namespace {

TEST(PackTest, RoundTripsTrivialTypes) {
  const std::vector<int> v{1, -2, 3};
  EXPECT_EQ(unpack<int>(pack(v)), v);
  const std::vector<double> d{1.5, -2.25};
  EXPECT_EQ(unpack<double>(pack(d)), d);
  EXPECT_TRUE(unpack<int>(pack(std::vector<int>{})).empty());
}

TEST(PackTest, UnpackRejectsMisalignedPayload) {
  // A truncated or corrupted frame must fail loudly, not silently drop
  // the tail bytes.
  Bytes bytes(sizeof(double) * 2 + 1);
  EXPECT_THROW(unpack<double>(bytes), Error);
  EXPECT_THROW(unpack<int>(Bytes(3)), Error);
  EXPECT_TRUE(unpack<int>(Bytes{}).empty());
}

TEST(ClusterTest, PointToPointDelivery) {
  run_cluster(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, pack(std::vector<int>{42}));
    } else {
      const auto v = unpack<int>(comm.recv(0, 7));
      ASSERT_EQ(v.size(), 1u);
      EXPECT_EQ(v[0], 42);
    }
  });
}

TEST(ClusterTest, SelfSendWorks) {
  run_cluster(1, [](Comm& comm) {
    comm.send(0, 3, pack(std::vector<int>{5}));
    EXPECT_EQ(unpack<int>(comm.recv(0, 3))[0], 5);
  });
}

TEST(ClusterTest, OrderPreservedPerChannel) {
  run_cluster(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) comm.send(1, 1, pack(std::vector<int>{i}));
    } else {
      for (int i = 0; i < 20; ++i)
        EXPECT_EQ(unpack<int>(comm.recv(0, 1))[0], i);
    }
  });
}

TEST(ClusterTest, TagsSeparateStreams) {
  run_cluster(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, pack(std::vector<int>{10}));
      comm.send(1, 2, pack(std::vector<int>{20}));
    } else {
      // Receive in reverse tag order.
      EXPECT_EQ(unpack<int>(comm.recv(0, 2))[0], 20);
      EXPECT_EQ(unpack<int>(comm.recv(0, 1))[0], 10);
    }
  });
}

TEST(ClusterTest, AllReduceSum) {
  for (int P : {1, 2, 4, 7}) {
    run_cluster(P, [P](Comm& comm) {
      const double sum = comm.allreduce_sum(comm.rank() + 1.0);
      EXPECT_DOUBLE_EQ(sum, P * (P + 1) / 2.0);
    });
  }
}

TEST(ClusterTest, AllReduceMax) {
  run_cluster(5, [](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())),
                     4.0);
  });
}

TEST(ClusterTest, RepeatedCollectivesStayInSync) {
  run_cluster(4, [](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      const double s = comm.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, 4.0);
    }
  });
}

TEST(ClusterTest, BarrierSeparatesPhases) {
  std::atomic<int> phase1_count{0};
  run_cluster(4, [&](Comm& comm) {
    phase1_count.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase1_count.load(), 4);
  });
}

TEST(ClusterTest, ExceptionInRankPropagates) {
  EXPECT_THROW(run_cluster(1,
                           [](Comm&) {
                             throw Error("rank failure");
                           }),
               Error);
}

TEST(ClusterTest, StatsCountMessagesAndBytes) {
  Cluster cluster(2);
  Comm c0(cluster, 0);
  c0.send(1, 0, Bytes(16));
  c0.send(1, 0, Bytes(8));
  EXPECT_EQ(cluster.total_messages(), 2u);
  EXPECT_EQ(cluster.total_bytes(), 24u);
}

TEST(ClusterTest, MailboxHighWaterTracksBacklog) {
  // The unbounded-mailbox assumption made visible: the watermark is the
  // deepest any rank's queue of undelivered messages ever got.
  Cluster cluster(2);
  Comm c0(cluster, 0);
  Comm c1(cluster, 1);
  for (int i = 0; i < 5; ++i) c0.send(1, 1, Bytes(4));
  for (int i = 0; i < 5; ++i) c1.recv(0, 1);
  c0.send(1, 1, Bytes(4));  // depth never exceeds 5 again
  c1.recv(0, 1);
  EXPECT_EQ(cluster.mailbox_high_water(1), 5u);
  EXPECT_EQ(cluster.mailbox_high_water(0), 0u);
  EXPECT_EQ(cluster.max_mailbox_depth(), 5u);
  // The per-endpoint statistics view agrees.
  EXPECT_EQ(cluster.transport(1).stats().max_mailbox_depth, 5u);
  EXPECT_EQ(cluster.transport(0).stats().messages_sent, 6u);
  EXPECT_EQ(cluster.transport(1).stats().messages_received, 6u);
}

TEST(ClusterTest, RejectsInvalidRanks) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.send(0, 5, 0, Bytes{}), Error);
  EXPECT_THROW(Cluster(0), Error);
}

}  // namespace
}  // namespace scmd
