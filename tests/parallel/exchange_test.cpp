#include "parallel/exchange.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "md/builders.hpp"
#include "parallel/parallel_engine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

ParticleSystem lattice_system(int atoms, double side, std::uint64_t seed) {
  Rng rng(seed);
  return make_cubic_lattice(Box::cubic(side), 1.0, atoms, 0.4, rng);
}

/// Reference ghost set: every atom image (integer box shifts) whose
/// position falls inside the rank's halo slab but not its owned region.
std::multiset<std::pair<std::int64_t, long long>> expected_ghosts(
    const ParticleSystem& sys, const Decomposition& decomp, int rank,
    const SlabSpec& slab) {
  const Vec3 lo = decomp.region_lo(rank);
  const Vec3 len = decomp.region_lengths();
  std::multiset<std::pair<std::int64_t, long long>> out;
  const Box& box = sys.box();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const Vec3 p = box.wrap(sys.positions()[i]);
    for (int ix = -1; ix <= 1; ++ix) {
      for (int iy = -1; iy <= 1; ++iy) {
        for (int iz = -1; iz <= 1; ++iz) {
          const Vec3 img = p + Vec3{ix * box.length(0), iy * box.length(1),
                                    iz * box.length(2)};
          bool in_slab = true, owned = true;
          for (int a = 0; a < 3; ++a) {
            if (img[a] < lo[a] - slab.t_lo[a] ||
                img[a] >= lo[a] + len[a] + slab.t_hi[a])
              in_slab = false;
            if (img[a] < lo[a] || img[a] >= lo[a] + len[a]) owned = false;
          }
          if (in_slab && !owned) {
            // Key: (gid, quantized image shift) to distinguish images.
            const long long key =
                (ix + 1) * 9LL + (iy + 1) * 3LL + (iz + 1);
            out.insert({i, key});
          }
        }
      }
    }
  }
  return out;
}

class ExchangeTest : public ::testing::TestWithParam<bool> {};

TEST_P(ExchangeTest, ImportDeliversExactHaloPopulation) {
  const bool both = GetParam();
  const ParticleSystem sys = lattice_system(400, 20.0, 90);
  const ProcessGrid pgrid({2, 2, 2});
  const Decomposition decomp(sys.box(), pgrid);
  SlabSpec slab;
  slab.t_hi = {3.0, 3.0, 3.0};
  if (both) slab.t_lo = {3.0, 3.0, 3.0};

  run_cluster(8, [&](Comm& comm) {
    RankState st = scatter_atoms(sys, decomp)[static_cast<std::size_t>(
        comm.rank())];
    const HaloExchange ex(decomp, slab, both);
    EngineCounters counters;
    ex.import(comm, st, counters);

    // Compare the (gid, image) multiset against the oracle.
    std::multiset<std::pair<std::int64_t, long long>> got;
    for (int g = 0; g < st.num_ghosts(); ++g) {
      const Vec3 p = st.ghost_pos[static_cast<std::size_t>(g)];
      const Vec3 w = sys.box().wrap(p);
      long long key = 0;
      for (int a = 0; a < 3; ++a) {
        const double shift = (p[a] - w[a]) / sys.box().length(a);
        key += (static_cast<long long>(std::llround(shift)) + 1) *
               (a == 0 ? 9 : (a == 1 ? 3 : 1));
      }
      got.insert({st.ghost_gid[static_cast<std::size_t>(g)], key});
    }
    EXPECT_EQ(got, expected_ghosts(sys, decomp, comm.rank(), slab))
        << "rank " << comm.rank();
    EXPECT_EQ(counters.ghost_atoms_imported,
              static_cast<std::uint64_t>(st.num_ghosts()));
  });
}

INSTANTIATE_TEST_SUITE_P(Directions, ExchangeTest, ::testing::Bool());

TEST(ExchangeTest, OctantImportUsesThreeMessagesPerRank) {
  const ParticleSystem sys = lattice_system(200, 18.0, 91);
  const ProcessGrid pgrid({2, 2, 2});
  const Decomposition decomp(sys.box(), pgrid);
  SlabSpec slab;
  slab.t_hi = {2.0, 2.0, 2.0};
  run_cluster(8, [&](Comm& comm) {
    RankState st = scatter_atoms(sys, decomp)[static_cast<std::size_t>(
        comm.rank())];
    const HaloExchange ex(decomp, slab, false);
    EngineCounters counters;
    ex.import(comm, st, counters);
    EXPECT_EQ(counters.messages, 3u);
  });
}

TEST(ExchangeTest, WriteBackReturnsAllGhostForcesToOwners) {
  const ParticleSystem sys = lattice_system(300, 18.0, 92);
  const ProcessGrid pgrid({2, 2, 2});
  const Decomposition decomp(sys.box(), pgrid);
  SlabSpec slab;
  slab.t_hi = {3.0, 3.0, 3.0};

  const int N = sys.num_atoms();
  std::vector<Vec3> final_force(static_cast<std::size_t>(N));

  run_cluster(8, [&](Comm& comm) {
    RankState st = scatter_atoms(sys, decomp)[static_cast<std::size_t>(
        comm.rank())];
    const HaloExchange ex(decomp, slab, false);
    EngineCounters counters;
    const auto stages = ex.import(comm, st, counters);

    // Put a marker force 1.0 on every copy (owned and ghost): after
    // write-back each owner must hold 1 + (number of images of its atom
    // on any rank's halo).
    std::vector<Vec3> force(static_cast<std::size_t>(st.num_total()),
                            Vec3{1.0, 0.0, 0.0});
    ex.write_back(comm, stages, st, force, counters);
    for (int i = 0; i < st.num_owned(); ++i) {
      final_force[static_cast<std::size_t>(
          st.gid[static_cast<std::size_t>(i)])] =
          force[static_cast<std::size_t>(i)];
    }
  });

  // Oracle: 1 + total ghost copies of each atom across all ranks.
  std::vector<double> expected(static_cast<std::size_t>(N), 1.0);
  for (int r = 0; r < 8; ++r) {
    for (const auto& [gid, key] : expected_ghosts(sys, decomp, r, slab))
      expected[static_cast<std::size_t>(gid)] += 1.0;
  }
  for (int i = 0; i < N; ++i) {
    EXPECT_DOUBLE_EQ(final_force[static_cast<std::size_t>(i)].x,
                     expected[static_cast<std::size_t>(i)])
        << "atom " << i;
  }
}

TEST(ExchangeTest, SlabThickerThanRegionRejected) {
  const Decomposition decomp(Box::cubic(8.0), ProcessGrid({2, 2, 2}));
  SlabSpec slab;
  slab.t_hi = {5.0, 1.0, 1.0};  // region is 4 Å
  EXPECT_THROW(HaloExchange(decomp, slab, false), Error);
}

TEST(MigratorTest, AtomsArriveAtTheirOwners) {
  ParticleSystem sys = lattice_system(300, 20.0, 93);
  const ProcessGrid pgrid({2, 2, 2});
  const Decomposition decomp(sys.box(), pgrid);

  std::vector<int> owner_after(static_cast<std::size_t>(sys.num_atoms()),
                               -1);
  // Scatter with correct ownership, then displace atoms by less than one
  // region (the migrator's single-hop contract) and migrate.
  const std::vector<RankState> states = scatter_atoms(sys, decomp);
  run_cluster(8, [&](Comm& comm) {
    RankState st = states[static_cast<std::size_t>(comm.rank())];
    // Drift atoms locally.
    Rng drift(100 + static_cast<std::uint64_t>(comm.rank()));
    for (Vec3& p : st.pos) {
      p = sys.box().wrap(p + Vec3{drift.uniform(-6, 6), drift.uniform(-6, 6),
                                  drift.uniform(-6, 6)});
    }
    const Migrator mig(decomp);
    mig.migrate(comm, st);
    // All owned atoms in region.
    const Vec3 lo = decomp.region_lo(comm.rank());
    const Vec3 len = decomp.region_lengths();
    for (const Vec3& p : st.pos) {
      for (int a = 0; a < 3; ++a) {
        EXPECT_GE(p[a], lo[a] - 1e-9);
        EXPECT_LT(p[a], lo[a] + len[a] + 1e-9);
      }
    }
    for (std::int64_t g : st.gid)
      owner_after[static_cast<std::size_t>(g)] = comm.rank();
  });
  // Every atom has exactly one owner.
  for (int o : owner_after) EXPECT_GE(o, 0);
}

TEST(MigratorTest, SettleRoutesAcrossMultipleRegions) {
  // Scatter on a uniform 4x1x1 grid, then swap in a heavily skewed
  // non-uniform decomposition: rank 0 grows to x < 12.5 Å while ranks
  // 1..3 shrink to 2.5 Å slivers.  Atoms owned by the old rank 2 around
  // x = 11 now belong to rank 0 — two hops away — so one-hop migrate
  // cannot deliver them but settle must.
  ParticleSystem sys = lattice_system(300, 20.0, 94);
  const ProcessGrid pgrid({4, 1, 1});
  const Decomposition uniform(sys.box(), pgrid);
  const Decomposition skewed(
      sys.box(), pgrid,
      {std::vector<int>{0, 5, 6, 7, 8}, std::vector<int>{0, 1},
       std::vector<int>{0, 1}},
      Int3{8, 1, 1}, pgrid);

  const std::vector<RankState> states = scatter_atoms(sys, uniform);
  std::vector<int> owner_after(static_cast<std::size_t>(sys.num_atoms()),
                               -1);
  std::vector<std::uint64_t> sent(4, 0);
  run_cluster(4, [&](Comm& comm) {
    RankState st = states[static_cast<std::size_t>(comm.rank())];
    const Migrator mig(skewed);
    sent[static_cast<std::size_t>(comm.rank())] = mig.settle(comm, st);
    const Vec3 lo = skewed.region_lo(comm.rank());
    const Vec3 hi = skewed.region_hi(comm.rank());
    for (const Vec3& p : st.pos) {
      for (int a = 0; a < 3; ++a) {
        EXPECT_GE(p[a], lo[a] - 1e-9);
        EXPECT_LT(p[a], hi[a] + 1e-9);
      }
    }
    for (std::int64_t g : st.gid)
      owner_after[static_cast<std::size_t>(g)] = comm.rank();
  });
  // Conservation: every atom ends up with exactly one owner, and it is
  // the owner the new decomposition prescribes.
  for (int i = 0; i < sys.num_atoms(); ++i) {
    ASSERT_GE(owner_after[static_cast<std::size_t>(i)], 0) << "atom " << i;
    EXPECT_EQ(owner_after[static_cast<std::size_t>(i)],
              skewed.owner_of(sys.box().wrap(sys.positions()[i])))
        << "atom " << i;
  }
  // The shrink from 5 Å regions to 2.5 Å slivers forces real traffic.
  EXPECT_GT(sent[1] + sent[2] + sent[3], 0u);
}

}  // namespace
}  // namespace scmd
