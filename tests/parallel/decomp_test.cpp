#include "parallel/decomp.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "support/error.hpp"

namespace scmd {
namespace {

TEST(ProcessGridTest, CoordRankRoundTrip) {
  const ProcessGrid pg({3, 2, 4});
  EXPECT_EQ(pg.num_ranks(), 24);
  for (int r = 0; r < pg.num_ranks(); ++r) {
    EXPECT_EQ(pg.rank_of(pg.coord_of(r)), r);
  }
}

TEST(ProcessGridTest, RankOfWrapsPeriodically) {
  const ProcessGrid pg({3, 3, 3});
  EXPECT_EQ(pg.rank_of({-1, 0, 0}), pg.rank_of({2, 0, 0}));
  EXPECT_EQ(pg.rank_of({3, 4, -3}), pg.rank_of({0, 1, 0}));
}

TEST(ProcessGridTest, NeighborsWrap) {
  const ProcessGrid pg({2, 1, 1});
  EXPECT_EQ(pg.neighbor(0, 0, +1), 1);
  EXPECT_EQ(pg.neighbor(1, 0, +1), 0);
  EXPECT_EQ(pg.neighbor(0, 0, -1), 1);
  // Single-rank axis: neighbor is self.
  EXPECT_EQ(pg.neighbor(0, 1, +1), 0);
}

TEST(ProcessGridTest, FactorProducesExactProduct) {
  for (int P : {1, 2, 3, 4, 6, 8, 12, 16, 27, 48, 64, 512, 768, 8192}) {
    const ProcessGrid pg = ProcessGrid::factor(P);
    EXPECT_EQ(pg.num_ranks(), P) << P;
  }
}

TEST(ProcessGridTest, FactorIsNearCubic) {
  EXPECT_EQ(ProcessGrid::factor(8).dims(), (Int3{2, 2, 2}));
  const Int3 d64 = ProcessGrid::factor(64).dims();
  EXPECT_EQ(d64, (Int3{4, 4, 4}));
  const Int3 d27 = ProcessGrid::factor(27).dims();
  EXPECT_EQ(d27, (Int3{3, 3, 3}));
}

TEST(DecompositionTest, AlignedGridDivisible) {
  const Decomposition d(Box::cubic(24.0), ProcessGrid({2, 2, 2}));
  const CellGrid g = d.aligned_grid(2.5);
  // Region 12 Å / 2.5 -> 4 cells/rank -> 8 cells/axis.
  EXPECT_EQ(g.dims(), (Int3{8, 8, 8}));
  EXPECT_EQ(d.cells_per_rank(g), (Int3{4, 4, 4}));
  EXPECT_GE(g.min_cell_length(), 2.5);
}

TEST(DecompositionTest, BrickLoTilesTheGrid) {
  const Decomposition d(Box::cubic(24.0), ProcessGrid({2, 2, 2}));
  const CellGrid g = d.aligned_grid(3.0);
  std::set<Int3> los;
  for (int r = 0; r < 8; ++r) los.insert(d.brick_lo(g, r));
  EXPECT_EQ(los.size(), 8u);
  const Int3 l = d.cells_per_rank(g);
  for (const Int3& lo : los) {
    EXPECT_EQ(lo.x % l.x, 0);
    EXPECT_EQ(lo.y % l.y, 0);
    EXPECT_EQ(lo.z % l.z, 0);
  }
}

TEST(DecompositionTest, RegionGeometry) {
  const Decomposition d(Box({12.0, 24.0, 36.0}), ProcessGrid({2, 2, 3}));
  const Vec3 len = d.region_lengths();
  EXPECT_DOUBLE_EQ(len.x, 6.0);
  EXPECT_DOUBLE_EQ(len.y, 12.0);
  EXPECT_DOUBLE_EQ(len.z, 12.0);
  const Vec3 lo = d.region_lo(d.pgrid().rank_of({1, 0, 2}));
  EXPECT_DOUBLE_EQ(lo.x, 6.0);
  EXPECT_DOUBLE_EQ(lo.y, 0.0);
  EXPECT_DOUBLE_EQ(lo.z, 24.0);
}

TEST(DecompositionTest, MisalignedGridFailsWithActionableMessage) {
  const Decomposition d(Box::cubic(12.0), ProcessGrid({3, 1, 1}));
  const CellGrid g = CellGrid::with_dims(Box::cubic(12.0), {4, 4, 4});
  // 4 cells cannot tile 3 ranks; the error must name the axis, both
  // counts, and how to fix it.
  try {
    d.cells_per_rank(g);
    FAIL() << "expected misaligned grid to throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("axis x"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4 cells"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3 ranks"), std::string::npos) << msg;
    EXPECT_NE(msg.find("aligned_grid"), std::string::npos) << msg;
  }
}

TEST(DecompositionTest, RejectsGrainFinerThanCutoff) {
  const Decomposition d(Box::cubic(8.0), ProcessGrid({4, 1, 1}));
  // Region 2 Å < rcut 2.5 Å.
  EXPECT_THROW(d.aligned_grid(2.5), Error);
}

}  // namespace
}  // namespace scmd
