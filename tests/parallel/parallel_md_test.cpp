// The headline parallel-correctness property: P-rank MD with real message
// passing reproduces the serial engine's forces, energies, and
// trajectories, for all three strategies and several process grids.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

struct Reference {
  double energy;
  std::vector<Vec3> pos, force;
};

Reference serial_reference(const ParticleSystem& initial,
                           const ForceField& field,
                           const std::string& strategy, double dt,
                           int steps) {
  ParticleSystem sys = initial;
  SerialEngineConfig cfg;
  cfg.dt = dt;
  SerialEngine engine(sys, field, make_strategy(strategy, field), cfg);
  for (int s = 0; s < steps; ++s) engine.step();
  Reference ref;
  ref.energy = engine.potential_energy();
  ref.pos.assign(sys.positions().begin(), sys.positions().end());
  ref.force.assign(sys.forces().begin(), sys.forces().end());
  return ref;
}

struct Case {
  std::string strategy;
  Int3 pgrid;
};

class ParallelMdTest : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelMdTest, MatchesSerialSilicaRun) {
  const auto& [strategy, pdims] = GetParam();
  Rng rng(110);
  // Big enough that every rank region fits rcut2 = 5.5 Å per axis under
  // a 2x2x2 grid: side >= 33 Å -> ~2400 atoms at 2.2 g/cc.
  const ParticleSystem initial = make_silica(2400, 2.2, 400.0, rng);
  const VashishtaSiO2 field;
  const double dt = 1.0 * units::kFemtosecond;
  const int steps = 3;

  const Reference ref =
      serial_reference(initial, field, strategy, dt, steps);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = dt;
  cfg.num_steps = steps;
  const ParallelRunResult res =
      run_parallel_md(sys, field, strategy, ProcessGrid(pdims), cfg);

  EXPECT_NEAR(res.potential_energy, ref.energy,
              1e-8 * std::abs(ref.energy) + 1e-8);
  for (int i = 0; i < sys.num_atoms(); ++i) {
    EXPECT_NEAR(sys.positions()[i].x, ref.pos[static_cast<std::size_t>(i)].x,
                1e-8)
        << i;
    EXPECT_NEAR(sys.positions()[i].y, ref.pos[static_cast<std::size_t>(i)].y,
                1e-8)
        << i;
    EXPECT_NEAR(sys.positions()[i].z, ref.pos[static_cast<std::size_t>(i)].z,
                1e-8)
        << i;
    EXPECT_NEAR(sys.forces()[i].x, ref.force[static_cast<std::size_t>(i)].x,
                1e-7)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndGrids, ParallelMdTest,
    ::testing::Values(Case{"SC", {2, 2, 2}}, Case{"FS", {2, 2, 2}},
                      Case{"Hybrid", {2, 2, 2}}, Case{"SC", {4, 1, 1}},
                      Case{"SC", {2, 2, 1}}, Case{"Hybrid", {1, 2, 2}},
                      // Ablation variants: octant import without collapse
                      // and collapse with full-shell import.
                      Case{"OC", {2, 2, 2}}, Case{"RC", {2, 2, 2}},
                      // Prefix-sharing enumeration across ranks.
                      Case{"SC+p", {2, 2, 2}}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      const Case& c = param_info.param;
      std::string tag;
      for (char ch : c.strategy) {
        if (std::isalnum(static_cast<unsigned char>(ch))) tag += ch;
      }
      return tag + "_" + std::to_string(c.pgrid.x) +
             std::to_string(c.pgrid.y) + std::to_string(c.pgrid.z);
    });

TEST(ParallelMdTest, SingleRankIsSerial) {
  Rng rng(111);
  const LennardJones lj;
  const ParticleSystem initial = make_gas(lj, 200, 5.0, 1.0, rng);
  const Reference ref = serial_reference(initial, lj, "SC", 0.005, 5);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = 0.005;
  cfg.num_steps = 5;
  run_parallel_md(sys, lj, "SC", ProcessGrid({1, 1, 1}), cfg);
  for (int i = 0; i < sys.num_atoms(); ++i) {
    EXPECT_NEAR(sys.positions()[i].x, ref.pos[static_cast<std::size_t>(i)].x,
                1e-10);
  }
}

TEST(ParallelMdTest, EnergyConservedAcrossRanks) {
  Rng rng(112);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 400, 5.0, 1.0, rng);
  ParallelRunConfig cfg;
  cfg.dt = 0.005;
  cfg.num_steps = 0;
  ParticleSystem probe = sys;
  const ParallelRunResult initial =
      run_parallel_md(probe, lj, "SC", ProcessGrid({2, 2, 2}), cfg);
  const double e0 = initial.potential_energy + probe.kinetic_energy();

  cfg.num_steps = 40;
  const ParallelRunResult after =
      run_parallel_md(sys, lj, "SC", ProcessGrid({2, 2, 2}), cfg);
  const double e1 = after.potential_energy + sys.kinetic_energy();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.02 + 0.05);
}

TEST(ParallelMdTest, ImportCountsShrinkWithOctantPattern) {
  Rng rng(113);
  const VashishtaSiO2 field;
  const ParticleSystem initial = make_silica(2400, 2.2, 300.0, rng);

  auto ghosts = [&](const std::string& strategy) {
    ParticleSystem sys = initial;
    ParallelRunConfig cfg;
    cfg.dt = 1.0 * units::kFemtosecond;
    cfg.num_steps = 0;
    return run_parallel_md(sys, field, strategy, ProcessGrid({2, 2, 2}), cfg)
        .total.ghost_atoms_imported;
  };
  const auto sc = ghosts("SC");
  const auto fs = ghosts("FS");
  const auto hy = ghosts("Hybrid");
  EXPECT_LT(sc, fs);
  EXPECT_LT(sc, hy);
  // Octant import is a fraction of the full shell; at this grain the
  // paper's ratio is ~26/7.
  EXPECT_GT(static_cast<double>(fs) / static_cast<double>(sc), 2.0);
}

}  // namespace
}  // namespace scmd
