// Checkpoint/restore and rank-failure recovery semantics of the
// distributed driver, exercised in-process: a restored run must continue
// the trajectory of an uninterrupted one, and the supervisor must
// survive an injected fault by replaying from the last snapshot.  (The
// real process-kill path over TCP is the app-level kill-and-recover
// test; in-process ranks have no dead-peer detection, so here faults
// surface as thrown errors.)

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/fault.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "net/inproc.hpp"
#include "parallel/parallel_engine.hpp"
#include "parallel/supervisor.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

constexpr double kDt = 1.0 * units::kFemtosecond;

ParticleSystem build_initial() {
  Rng rng(88);
  return make_silica(1500, 2.2, 350.0, rng);
}

std::string fresh_dir(const std::string& stem) {
  const std::string dir =
      "/tmp/" + stem + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

/// Scoped environment variable (the fault plan is env-driven).
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// Run `config` on `ranks` in-process threads of one Cluster; returns
/// rank 0's gathered system and per-rank results.
std::vector<ParallelRunResult> run_cluster(
    std::vector<ParticleSystem>& systems, const ParallelRunConfig& config,
    int ranks) {
  const VashishtaSiO2 field;
  Cluster cluster(ranks);
  std::vector<ParallelRunResult> results(static_cast<std::size_t>(ranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(cluster.transport(r));
        results[static_cast<std::size_t>(r)] = run_parallel_md_rank(
            systems[static_cast<std::size_t>(r)], field, "SC",
            ProcessGrid::factor(ranks), config, comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

void expect_positions_match(const ParticleSystem& a, const ParticleSystem& b,
                            double tol) {
  ASSERT_EQ(a.num_atoms(), b.num_atoms());
  for (int i = 0; i < a.num_atoms(); ++i) {
    EXPECT_NEAR(a.positions()[i].x, b.positions()[i].x, tol) << i;
    EXPECT_NEAR(a.positions()[i].y, b.positions()[i].y, tol) << i;
    EXPECT_NEAR(a.positions()[i].z, b.positions()[i].z, tol) << i;
    EXPECT_NEAR(a.velocities()[i].x, b.velocities()[i].x, tol) << i;
  }
}

TEST(RecoveryTest, RestoredRunContinuesTheTrajectory) {
  const int P = 4;
  const std::string dir = fresh_dir("scmd_recovery_restore");

  // Uninterrupted 10-step reference.
  std::vector<ParticleSystem> ref_systems;
  for (int r = 0; r < P; ++r) ref_systems.push_back(build_initial());
  ParallelRunConfig ref_cfg;
  ref_cfg.dt = kDt;
  ref_cfg.num_steps = 10;
  run_cluster(ref_systems, ref_cfg, P);

  // Interrupted run: 6 steps with snapshots every 3.
  std::vector<ParticleSystem> first_systems;
  for (int r = 0; r < P; ++r) first_systems.push_back(build_initial());
  ParallelRunConfig first_cfg = ref_cfg;
  first_cfg.num_steps = 6;
  first_cfg.durability.checkpoint_every = 3;
  first_cfg.durability.checkpoint_dir = dir;
  const auto first = run_cluster(first_systems, first_cfg, P);
  EXPECT_EQ(first[0].snapshots_written, 2);
  EXPECT_EQ(first[0].restored_step, 0);

  // Resumed run: restore the step-6 snapshot, continue to step 10.
  std::vector<ParticleSystem> resumed_systems;
  for (int r = 0; r < P; ++r) resumed_systems.push_back(build_initial());
  ParallelRunConfig resumed_cfg = first_cfg;
  resumed_cfg.num_steps = 10;
  resumed_cfg.durability.restore = true;
  const auto resumed = run_cluster(resumed_systems, resumed_cfg, P);
  EXPECT_EQ(resumed[0].restored_step, 6);

  expect_positions_match(resumed_systems[0], ref_systems[0], 5e-8);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, ExplicitRestorePathWinsOverLatest) {
  const int P = 1;
  const std::string dir = fresh_dir("scmd_recovery_explicit");
  std::vector<ParticleSystem> systems{build_initial()};
  ParallelRunConfig cfg;
  cfg.dt = kDt;
  cfg.num_steps = 4;
  cfg.durability.checkpoint_every = 2;
  cfg.durability.checkpoint_dir = dir;
  run_cluster(systems, cfg, P);  // snapshots at steps 2 and 4

  std::vector<ParticleSystem> resumed{build_initial()};
  ParallelRunConfig rcfg = cfg;
  rcfg.num_steps = 6;
  rcfg.durability.restore = true;
  rcfg.durability.restore_path =
      ckpt::CheckpointDir(dir, 3).path_for_step(2);
  const auto results = run_cluster(resumed, rcfg, P);
  EXPECT_EQ(results[0].restored_step, 2);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, RestoreWithEmptyDirStartsFresh) {
  const std::string dir = fresh_dir("scmd_recovery_fresh");
  std::filesystem::create_directories(dir);
  std::vector<ParticleSystem> systems{build_initial()};
  ParallelRunConfig cfg;
  cfg.dt = kDt;
  cfg.num_steps = 3;
  cfg.durability.checkpoint_every = 2;
  cfg.durability.checkpoint_dir = dir;
  cfg.durability.restore = true;  // nothing to restore yet
  const auto results = run_cluster(systems, cfg, 1);
  EXPECT_EQ(results[0].restored_step, 0);
  EXPECT_GT(results[0].snapshots_written, 0);
  std::filesystem::remove_all(dir);
}

/// Single-rank in-process endpoint that owns its Cluster, so the
/// supervisor's make_transport factory can mint one per attempt.
class SoloTransport final : public Transport {
 public:
  SoloTransport() : cluster_(1) {}

  int rank() const override { return 0; }
  int num_ranks() const override { return 1; }
  void send(int dst, int tag, Bytes payload) override {
    cluster_.transport(0).send(dst, tag, std::move(payload));
  }
  Bytes recv(int src, int tag) override {
    return cluster_.transport(0).recv(src, tag);
  }
  void barrier() override {}
  double allreduce_sum(double v) override { return v; }
  double allreduce_max(double v) override { return v; }
  TransportStats stats() const override {
    return cluster_.transport(0).stats();
  }

 private:
  mutable Cluster cluster_;
};

TEST(RecoveryTest, SupervisorReplaysFromLastSnapshotAfterFault) {
  const std::string dir = fresh_dir("scmd_recovery_supervised");
  const std::string token = dir + "_token";
  std::filesystem::remove(token);
  // Kill rank 0 after step 4 completes — before the step-4 snapshot is
  // cut, so recovery resumes from the step-2 one.  The token makes the
  // fault fire exactly once; without it the replay would die forever.
  EnvGuard kill_at("SCMD_FAULT_KILL_AT_STEP", "4");
  EnvGuard kill_rank("SCMD_FAULT_KILL_RANK", "0");
  EnvGuard token_env("SCMD_FAULT_TOKEN", token);

  const VashishtaSiO2 field;
  ParticleSystem sys = build_initial();
  ParallelRunConfig cfg;
  cfg.dt = kDt;
  cfg.num_steps = 8;
  cfg.durability.checkpoint_every = 2;
  cfg.durability.checkpoint_dir = dir;
  SupervisorConfig sup;
  sup.max_recoveries = 2;
  sup.backoff_s = 0.0;
  sup.make_transport = [] { return std::make_unique<SoloTransport>(); };

  const ParallelRunResult res = run_parallel_md_supervised(
      sys, field, "SC", ProcessGrid({1, 1, 1}), cfg, sup);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_EQ(res.restored_step, 2);
  EXPECT_TRUE(std::filesystem::exists(token));

  // The recovered trajectory must match an unfaulted run.
  ParticleSystem ref = build_initial();
  ParallelRunConfig ref_cfg;
  ref_cfg.dt = kDt;
  ref_cfg.num_steps = 8;
  run_parallel_md(ref, field, "SC", ProcessGrid({1, 1, 1}), ref_cfg);
  expect_positions_match(sys, ref, 5e-8);

  std::filesystem::remove_all(dir);
  std::filesystem::remove(token);
}

TEST(RecoveryTest, SupervisorGivesUpAfterBudget) {
  const std::string dir = fresh_dir("scmd_recovery_exhausted");
  // No token: the fault re-fires on every replay, so a budget of 1
  // recovery must end in the error propagating out.
  EnvGuard kill_at("SCMD_FAULT_KILL_AT_STEP", "3");
  EnvGuard kill_rank("SCMD_FAULT_KILL_RANK", "0");

  const VashishtaSiO2 field;
  ParticleSystem sys = build_initial();
  ParallelRunConfig cfg;
  cfg.dt = kDt;
  cfg.num_steps = 6;
  cfg.durability.checkpoint_every = 2;
  cfg.durability.checkpoint_dir = dir;
  SupervisorConfig sup;
  sup.max_recoveries = 1;
  sup.backoff_s = 0.0;
  sup.make_transport = [] { return std::make_unique<SoloTransport>(); };

  EXPECT_THROW(run_parallel_md_supervised(sys, field, "SC",
                                          ProcessGrid({1, 1, 1}), cfg, sup),
               Error);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, FaultPlanParsesFromEnvironment) {
  {
    EnvGuard kill_at("SCMD_FAULT_KILL_AT_STEP", "17");
    EnvGuard kill_rank("SCMD_FAULT_KILL_RANK", "3");
    EnvGuard token_env("SCMD_FAULT_TOKEN", "/tmp/tok");
    const auto plan = ckpt::fault_plan_from_env();
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->kill_at_step, 17);
    EXPECT_EQ(plan->kill_rank, 3);
    EXPECT_EQ(plan->token_path, "/tmp/tok");
  }
  EXPECT_FALSE(ckpt::fault_plan_from_env().has_value());
}

TEST(RecoveryTest, FaultTokenBurnsAfterFirstFiring) {
  const std::string token = fresh_dir("scmd_recovery_token") + ".tok";
  std::filesystem::remove(token);
  ckpt::FaultPlan plan;
  plan.kill_at_step = 3;
  plan.kill_rank = 1;
  plan.token_path = token;
  const std::optional<ckpt::FaultPlan> armed = plan;

  ckpt::maybe_kill(armed, /*rank=*/0, /*completed_step=*/3, nullptr);  // rank
  ckpt::maybe_kill(armed, 1, 2, nullptr);                              // step
  EXPECT_FALSE(std::filesystem::exists(token));
  EXPECT_THROW(ckpt::maybe_kill(armed, 1, 3, nullptr), Error);
  EXPECT_TRUE(std::filesystem::exists(token));
  // Token burned: the same crossing stands down now.
  ckpt::maybe_kill(armed, 1, 3, nullptr);
  std::filesystem::remove(token);
}

}  // namespace
}  // namespace scmd
