// Batched-kernel parity (docs/KERNELS.md): for every specialized
// potential and every arity, the batched SoA kernel must agree with the
// scalar fallback on the same recorded tuple stream — identical eval
// counts (the mask criterion is bitwise the enumerator's test) and
// energies/forces within the documented numerical contract (vexp1 and
// powi replace libm, ≤ a few ulp).  Plus: the vexp1/powi primitives
// against libm directly, and a cached-replay engine run in both modes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "cell/domain.hpp"
#include "engines/serial_engine.hpp"
#include "engines/tuple_strategy.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "pattern/generate.hpp"
#include "potentials/bks.hpp"
#include "potentials/dihedral.hpp"
#include "potentials/lj.hpp"
#include "potentials/morse.hpp"
#include "potentials/stillinger_weber.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"
#include "tuples/kernels/kernels.hpp"
#include "tuples/kernels/simd.hpp"
#include "tuples/ucp.hpp"

namespace scmd {
namespace {

constexpr double kRelTol = 1e-10;

/// Evaluate every arity of `field` over a skin-inflated recorded tuple
/// stream (the replay shape) in both kernel modes and require parity.
void expect_mode_parity(const ForceField& field, const ParticleSystem& sys,
                        double skin) {
  const kernels::BoundKernels batched(field, kernels::KernelMode::kAuto);
  const kernels::BoundKernels scalar(field, kernels::KernelMode::kScalar);
  for (int n = 2; n <= field.max_n(); ++n) {
    if (field.rcut(n) <= 0.0) continue;  // no n-body term (ChainDihedral n=3)
    SCOPED_TRACE("n=" + std::to_string(n));
    const Pattern psi = make_sc(n);
    const CellGrid grid(sys.box(), field.rcut(n) + skin);
    const CellDomain dom = make_serial_domain(grid, halo_for(psi),
                                              sys.positions(), sys.types());
    const CompiledPattern cp(psi);
    std::vector<int> rec;
    for_each_tuple(dom, cp, field.rcut(n) + skin,
                   [&](std::span<const int> t) {
                     rec.insert(rec.end(), t.begin(), t.end());
                   },
                   nullptr);
    const long long count = static_cast<long long>(rec.size()) / n;
    ASSERT_GT(count, 100) << "workload too sparse to be a real check";
    const double rcut2 = field.rcut(n) * field.rcut(n);

    std::vector<Vec3> fa(dom.positions().size());
    std::vector<Vec3> fs(dom.positions().size());
    std::uint64_t eva = 0;
    std::uint64_t evs = 0;
    const double ea = batched.eval(n, rec.data(), count, dom.positions(),
                                   dom.types(), rcut2, fa.data(), eva);
    const double es = scalar.eval(n, rec.data(), count, dom.positions(),
                                  dom.types(), rcut2, fs.data(), evs);

    // The exact-rcut mask must agree tuple for tuple, not just in sum.
    EXPECT_EQ(eva, evs);
    EXPECT_GT(evs, 0u);
    EXPECT_NEAR(ea, es, kRelTol * std::abs(es) + kRelTol);

    // Forces: relative to the largest component so near-cancelling
    // per-atom sums don't demand absolute precision the contract never
    // promised.
    double fmax = 0.0;
    for (const Vec3& f : fs) {
      fmax = std::max({fmax, std::abs(f.x), std::abs(f.y), std::abs(f.z)});
    }
    const double ftol = kRelTol * std::max(fmax, 1.0);
    for (std::size_t i = 0; i < fs.size(); ++i) {
      ASSERT_NEAR(fa[i].x, fs[i].x, ftol) << i;
      ASSERT_NEAR(fa[i].y, fs[i].y, ftol) << i;
      ASSERT_NEAR(fa[i].z, fs[i].z, ftol) << i;
    }
  }
}

TEST(KernelParityTest, VashishtaSilica) {
  Rng rng(11);
  const ParticleSystem sys = make_silica(648, 2.2, 600.0, rng);
  const VashishtaSiO2 field;
  const kernels::BoundKernels k(field, kernels::KernelMode::kAuto);
  EXPECT_TRUE(k.specialized(2));
  EXPECT_TRUE(k.specialized(3));
  expect_mode_parity(field, sys, 0.4);
}

TEST(KernelParityTest, BksSilica) {
  Rng rng(12);
  const ParticleSystem sys = make_silica(648, 2.2, 600.0, rng);
  const BksSiO2 field;
  EXPECT_TRUE(
      kernels::BoundKernels(field, kernels::KernelMode::kAuto).specialized(2));
  expect_mode_parity(field, sys, 0.4);
}

TEST(KernelParityTest, LennardJonesGas) {
  Rng rng(13);
  const LennardJones field;
  const ParticleSystem sys = make_gas(field, 400, 4.0, 1.0, rng);
  EXPECT_TRUE(
      kernels::BoundKernels(field, kernels::KernelMode::kAuto).specialized(2));
  expect_mode_parity(field, sys, 0.2);
}

TEST(KernelParityTest, MorseGas) {
  Rng rng(14);
  const Morse field;
  const ParticleSystem sys = make_gas(field, 400, 4.0, 50.0, rng);
  EXPECT_TRUE(
      kernels::BoundKernels(field, kernels::KernelMode::kAuto).specialized(2));
  expect_mode_parity(field, sys, 0.4);
}

TEST(KernelParityTest, StillingerWeberGas) {
  Rng rng(15);
  const StillingerWeber field;
  const ParticleSystem sys = make_gas(field, 300, 4.0, 300.0, rng);
  const kernels::BoundKernels k(field, kernels::KernelMode::kAuto);
  EXPECT_TRUE(k.specialized(2));
  EXPECT_TRUE(k.specialized(3));
  expect_mode_parity(field, sys, 0.3);
}

TEST(KernelParityTest, ChainDihedralFallsBackAtEveryArity) {
  // No batched kernel exists for this field; kAuto must be the scalar
  // path (trivial parity) through n = 4, covering the arity-unrolled
  // fallback loops.
  Rng rng(16);
  const ChainDihedral field;
  const ParticleSystem sys =
      make_gas(field, 300, 3.0, 0.02 / units::kBoltzmann / 300.0, rng);
  const kernels::BoundKernels k(field, kernels::KernelMode::kAuto);
  EXPECT_FALSE(k.specialized(2));
  EXPECT_FALSE(k.specialized(3));
  EXPECT_FALSE(k.specialized(4));
  expect_mode_parity(field, sys, 0.1);
}

TEST(KernelPrimitivesTest, Vexp1MatchesLibmOverKernelRange) {
  // Kernel arguments: Morse/SW/bend exponents are mostly in [-60, 5];
  // sweep well past both ends, through the clamp regions.
  for (double x = -750.0; x <= 60.0; x += 0.37) {
    const double want = std::exp(x);
    const double got = kernels::vexp1(x);
    ASSERT_NEAR(got, want, 4e-15 * want + 1e-300) << "x=" << x;
  }
  // The low clamp saturates to exp(-708.39) ~ 2e-308, never NaN; the
  // high clamp saturates to huge (inf once 2^n overflows the exponent
  // field) — kernel arguments never reach it.
  EXPECT_LT(kernels::vexp1(-1000.0), 1e-307);
  EXPECT_GT(kernels::vexp1(-1000.0), 0.0);
  EXPECT_GT(kernels::vexp1(1000.0), 1e308);
  EXPECT_FALSE(std::isnan(kernels::vexp1(1000.0)));
}

TEST(KernelPrimitivesTest, PowiMatchesPow) {
  for (int e = 0; e <= 31; ++e) {
    for (double x : {0.3, 0.97, 1.0, 1.8, 7.5}) {
      const double want = std::pow(x, e);
      ASSERT_NEAR(kernels::powi(x, e), want, 1e-13 * want) << x << "^" << e;
    }
  }
  EXPECT_TRUE(kernels::small_integer(7.0));
  EXPECT_FALSE(kernels::small_integer(7.5));
  EXPECT_FALSE(kernels::small_integer(-2.0));
}

TEST(KernelModeTest, CachedReplayLockstepAcrossModes) {
  // A cached MD run (rebuilds + replays) must stay in numerical
  // lockstep whether replay uses the batched kernels or the scalar
  // fallback — same trajectory to the parity tolerance at every step.
  const VashishtaSiO2 field;
  Rng rng(310);
  const ParticleSystem initial = make_silica(648, 2.2, 400.0, rng);

  auto run = [&](kernels::KernelMode mode) {
    ParticleSystem sys = initial;
    SerialEngineConfig cfg;
    cfg.dt = 0.5 * units::kFemtosecond;
    cfg.tuple_cache.enabled = true;
    cfg.tuple_cache.skin = 0.15;
    auto strategy = make_strategy("SC", field);
    dynamic_cast<TupleStrategy&>(*strategy).set_kernel_mode(mode);
    SerialEngine engine(sys, field, std::move(strategy), cfg);
    std::vector<double> energies;
    for (int s = 0; s < 25; ++s) {
      engine.step();
      energies.push_back(engine.potential_energy());
    }
    EXPECT_GE(engine.counters().cache_rebuilds, 1u);
    EXPECT_GT(engine.counters().cache_replayed, 0u);
    return energies;
  };

  const std::vector<double> auto_e = run(kernels::KernelMode::kAuto);
  const std::vector<double> scalar_e = run(kernels::KernelMode::kScalar);
  ASSERT_EQ(auto_e.size(), scalar_e.size());
  for (std::size_t s = 0; s < auto_e.size(); ++s) {
    // Per-step divergence stays at kernel-parity scale; it cannot
    // compound into trajectory separation over this window.
    EXPECT_NEAR(auto_e[s], scalar_e[s], 1e-8 * std::abs(scalar_e[s]) + 1e-8)
        << "step " << s;
  }
}

TEST(KernelModeTest, EnvVarForcesScalar) {
  ::setenv("SCMD_KERNELS", "scalar", 1);
  EXPECT_EQ(kernels::mode_from_env(), kernels::KernelMode::kScalar);
  ::setenv("SCMD_KERNELS", "auto", 1);
  EXPECT_EQ(kernels::mode_from_env(), kernels::KernelMode::kAuto);
  ::unsetenv("SCMD_KERNELS");
  EXPECT_EQ(kernels::mode_from_env(), kernels::KernelMode::kAuto);
}

}  // namespace
}  // namespace scmd
