// Sub-cutoff cell generalization (paper Sec. 6, midpoint-method style):
// patterns with reach k on cells of side rcut/k must produce identical
// physics while scanning a smaller volume per tuple.

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "pattern/analysis.hpp"
#include "pattern/generate.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(SubCutoffPatternTest, SizesMatchGeneralizedClosedForms) {
  for (int reach : {1, 2}) {
    for (int n : {2, 3}) {
      EXPECT_EQ(static_cast<long long>(generate_fs(n, reach).size()),
                fs_pattern_size(n, reach))
          << "n=" << n << " reach=" << reach;
      EXPECT_EQ(static_cast<long long>(make_sc(n, reach).size()),
                sc_pattern_size(n, reach))
          << "n=" << n << " reach=" << reach;
    }
  }
  // reach = 2, n = 2: 125 FS paths, (125 + 1)/2 = 63 SC paths.
  EXPECT_EQ(fs_pattern_size(2, 2), 125);
  EXPECT_EQ(sc_pattern_size(2, 2), 63);
}

TEST(SubCutoffPatternTest, HalvingHoldsForLargerReach) {
  const double ratio = static_cast<double>(sc_pattern_size(3, 2)) /
                       static_cast<double>(fs_pattern_size(3, 2));
  EXPECT_NEAR(ratio, 0.5, 0.005);
}

TEST(SubCutoffPatternTest, CoverageWithinReachTimesNMinus1) {
  const Pattern sc = make_sc(3, 2);
  for (const Int3& v : cell_coverage(sc)) {
    EXPECT_TRUE(v.x >= 0 && v.y >= 0 && v.z >= 0);
    EXPECT_LE(v.chebyshev(), 4);  // reach * (n-1)
  }
}

TEST(SubCutoffPatternTest, GeneralizedImportVolumes) {
  EXPECT_EQ(import_volume(make_sc(2, 2), {2, 2, 2}), sc_import_volume(2, 2, 2));
  EXPECT_EQ(import_volume(generate_fs(2, 2), {2, 2, 2}),
            fs_import_volume(2, 2, 2));
}

TEST(SubCutoffPatternTest, PatternExplosionGuard) {
  EXPECT_THROW(generate_fs(5, 2), Error);  // 125^4 paths
}

TEST(SubCutoffStrategyTest, IdenticalForcesAtReach2) {
  Rng rng(130);
  const VashishtaSiO2 field;
  ParticleSystem base = make_silica(450, 2.2, 500.0, rng);

  auto forces_with = [&](const std::string& name) {
    ParticleSystem sys = base;
    SerialEngine engine(sys, field, make_strategy(name, field));
    return std::make_pair(engine.potential_energy(),
                          std::vector<Vec3>(sys.forces().begin(),
                                            sys.forces().end()));
  };
  const auto [e1, f1] = forces_with("SC");
  const auto [e2, f2] = forces_with("SC:2");
  const auto [e3, f3] = forces_with("FS:2");
  EXPECT_NEAR(e1, e2, 1e-8 * std::abs(e1));
  EXPECT_NEAR(e1, e3, 1e-8 * std::abs(e1));
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_NEAR(f1[i].x, f2[i].x, 1e-8) << i;
    EXPECT_NEAR(f1[i].y, f2[i].y, 1e-8) << i;
    EXPECT_NEAR(f1[i].z, f2[i].z, 1e-8) << i;
    EXPECT_NEAR(f1[i].x, f3[i].x, 1e-8) << i;
  }
}

TEST(SubCutoffStrategyTest, Reach2ScansFewerChainCandidatesPerTuple) {
  // The midpoint-style benefit: tighter cells exclude more of the search
  // volume, so fewer candidate chains are examined for the same accepted
  // set (pairs: 4.2 rcut³ of candidate volume at k=2 vs 8 rcut³ at k=1
  // after collapse).
  Rng rng(131);
  const LennardJones lj;
  ParticleSystem base = make_gas(lj, 2000, 6.0, 1.0, rng);

  auto counters_with = [&](const std::string& name) {
    ParticleSystem sys = base;
    SerialEngine engine(sys, lj, make_strategy(name, lj));
    return engine.counters();
  };
  const EngineCounters k1 = counters_with("SC");
  const EngineCounters k2 = counters_with("SC:2");
  EXPECT_EQ(k1.tuples[2].accepted, k2.tuples[2].accepted);
  EXPECT_LT(k2.tuples[2].chain_candidates, k1.tuples[2].chain_candidates);
  // ...at the price of far more cell bookkeeping: (2k+1)^3-fold more
  // paths over 8-fold more (mostly emptier) cells.
  EXPECT_GT(k2.tuples[2].cell_visits, 4 * k1.tuples[2].cell_visits);
}

TEST(SubCutoffStrategyTest, NveStableAtReach2) {
  Rng rng(132);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 400, 4.0, 0.5, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.005;
  SerialEngine engine(sys, lj, make_strategy("SC:2", lj), cfg);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 50; ++s) engine.step();
  EXPECT_NEAR(engine.total_energy(), e0, std::abs(e0) * 0.01 + 0.05);
}

TEST(SubCutoffStrategyTest, NameReflectsReach) {
  const LennardJones lj;
  EXPECT_EQ(make_strategy("SC:2", lj)->name(), "SC/k=2");
  EXPECT_EQ(make_strategy("SC", lj)->name(), "SC");
  EXPECT_THROW(make_strategy("Hybrid:2", lj), Error);
  EXPECT_THROW(make_strategy("SC:9", lj), Error);
}

}  // namespace
}  // namespace scmd
