#include "tuples/ucp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pattern/generate.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> pos;
  std::vector<int> type;
};

TestSystem random_system(int n, double side, std::uint64_t seed) {
  TestSystem s;
  s.box = Box::cubic(side);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    s.pos.push_back(
        {rng.uniform(0, side), rng.uniform(0, side), rng.uniform(0, side)});
    s.type.push_back(0);
  }
  return s;
}

/// Canonical form of an undirected tuple of gids: min(chain, reversed).
std::vector<std::int64_t> canon(std::vector<std::int64_t> t) {
  std::vector<std::int64_t> r(t.rbegin(), t.rend());
  return std::min(t, r);
}

std::multiset<std::vector<std::int64_t>> collect_tuples(
    const CellDomain& dom, const Pattern& psi, double rcut,
    TupleCounters* tc = nullptr) {
  const CompiledPattern cp(psi);
  std::multiset<std::vector<std::int64_t>> out;
  const auto gids = dom.gids();
  for_each_tuple(
      dom, cp, rcut,
      [&](std::span<const int> t) {
        std::vector<std::int64_t> ids;
        for (int a : t) ids.push_back(gids[a]);
        out.insert(canon(std::move(ids)));
      },
      tc);
  return out;
}

TEST(CompiledPatternTest, GuardsFollowCollapseState) {
  const CompiledPattern sc(make_sc(2));
  int guarded = 0;
  for (const CompiledPath& p : sc.paths()) guarded += p.guard;
  EXPECT_EQ(guarded, 1);  // only the self-reflective (0,0) path

  const CompiledPattern fs(generate_fs(2));
  guarded = 0;
  for (const CompiledPath& p : fs.paths()) guarded += p.guard;
  EXPECT_EQ(guarded, 27);  // every full-shell path is guarded
}

TEST(CompiledPatternTest, RequiredHaloMatchesPattern) {
  const CompiledPattern sc(make_sc(3));
  EXPECT_EQ(sc.required_halo().lo, (Int3{0, 0, 0}));
  EXPECT_EQ(sc.required_halo().hi, (Int3{2, 2, 2}));
}

TEST(UcpPairTest, MatchesBruteForcePairs) {
  const TestSystem s = random_system(80, 12.0, 21);
  const double rcut = 3.0;
  const CellGrid grid(s.box, rcut);
  const Pattern sc = make_sc(2);
  const CellDomain dom =
      make_serial_domain(grid, halo_for(sc), s.pos, s.type);
  const auto tuples = collect_tuples(dom, sc, rcut);

  // Brute force with minimum image.
  std::multiset<std::vector<std::int64_t>> expected;
  for (int i = 0; i < 80; ++i) {
    for (int j = i + 1; j < 80; ++j) {
      if (s.box.dist2(s.pos[i], s.pos[j]) < rcut * rcut)
        expected.insert(canon({i, j}));
    }
  }
  EXPECT_EQ(tuples, expected);
}

TEST(UcpPairTest, FsAndScDeliverIdenticalTupleSets) {
  const TestSystem s = random_system(60, 12.0, 22);
  const double rcut = 3.0;
  const CellGrid grid(s.box, rcut);
  const Pattern sc = make_sc(2);
  const Pattern fs = generate_fs(2);
  const HaloSpec halo = merge(halo_for(sc), halo_for(fs));
  const CellDomain dom = make_serial_domain(grid, halo, s.pos, s.type);
  EXPECT_EQ(collect_tuples(dom, sc, rcut), collect_tuples(dom, fs, rcut));
}

TEST(UcpTripletTest, FsAndScDeliverIdenticalTripletSets) {
  const TestSystem s = random_system(50, 15.0, 23);
  const double rcut = 2.5;  // 6 cells per axis
  const CellGrid grid(s.box, rcut);
  const Pattern sc = make_sc(3);
  const Pattern fs = generate_fs(3);
  const HaloSpec halo = merge(halo_for(sc), halo_for(fs));
  const CellDomain dom = make_serial_domain(grid, halo, s.pos, s.type);
  EXPECT_EQ(collect_tuples(dom, sc, rcut), collect_tuples(dom, fs, rcut));
}

TEST(UcpTripletTest, NoDuplicateTuplesFromSc) {
  const TestSystem s = random_system(50, 15.0, 24);
  const double rcut = 2.5;
  const CellGrid grid(s.box, rcut);
  const Pattern sc = make_sc(3);
  const CellDomain dom =
      make_serial_domain(grid, halo_for(sc), s.pos, s.type);
  const auto tuples = collect_tuples(dom, sc, rcut);
  std::set<std::vector<std::int64_t>> unique(tuples.begin(), tuples.end());
  EXPECT_EQ(unique.size(), tuples.size());
}

TEST(UcpCountersTest, FsScansRoughlyTwiceSc) {
  const TestSystem s = random_system(200, 18.0, 25);
  const double rcut = 3.0;
  const CellGrid grid(s.box, rcut);
  const Pattern sc = make_sc(3);
  const Pattern fs = generate_fs(3);
  const HaloSpec halo = merge(halo_for(sc), halo_for(fs));
  const CellDomain dom = make_serial_domain(grid, halo, s.pos, s.type);

  TupleCounters tsc, tfs;
  collect_tuples(dom, sc, rcut, &tsc);
  collect_tuples(dom, fs, rcut, &tfs);
  // Identical accepted tuples; FS examines ~2x the chains.
  EXPECT_EQ(tsc.accepted, tfs.accepted);
  const double ratio = static_cast<double>(tfs.chain_candidates) /
                       static_cast<double>(tsc.chain_candidates);
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
}

TEST(ForceSetSizeTest, MatchesPatternSizeTimesOccupancyProduct) {
  // A uniform one-atom-per-cell system: |S(n)| = #cells * |Psi|.
  const Box box = Box::cubic(12.0);
  const CellGrid grid(box, 3.0);  // 4^3 cells
  std::vector<Vec3> pos;
  std::vector<int> type;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z) {
        pos.push_back({x * 3.0 + 1.5, y * 3.0 + 1.5, z * 3.0 + 1.5});
        type.push_back(0);
      }
  const Pattern sc = make_sc(2);
  const CellDomain dom = make_serial_domain(grid, halo_for(sc), pos, type);
  const CompiledPattern cp(sc);
  EXPECT_EQ(force_set_size(dom, cp),
            64 * static_cast<long long>(sc.size()));
}

TEST(ForceSetSizeTest, FsToScRatioNearTheory) {
  const TestSystem s = random_system(300, 18.0, 26);
  const CellGrid grid(s.box, 3.0);
  const Pattern sc = make_sc(3);
  const Pattern fs = generate_fs(3);
  const HaloSpec halo = merge(halo_for(sc), halo_for(fs));
  const CellDomain dom = make_serial_domain(grid, halo, s.pos, s.type);
  const double ratio =
      static_cast<double>(force_set_size(dom, CompiledPattern(fs))) /
      static_cast<double>(force_set_size(dom, CompiledPattern(sc)));
  // |Psi_FS| / |Psi_SC| = 729/378 ~ 1.93 for n = 3 (Fig. 7's ~2x).
  EXPECT_NEAR(ratio, 729.0 / 378.0, 0.15);
}

TEST(CountTuplesTest, AgreesWithVisitorCount) {
  const TestSystem s = random_system(70, 12.0, 27);
  const double rcut = 3.0;
  const CellGrid grid(s.box, rcut);
  const Pattern sc = make_sc(2);
  const CellDomain dom =
      make_serial_domain(grid, halo_for(sc), s.pos, s.type);
  const CompiledPattern cp(sc);
  const TupleCounters tc = count_tuples(dom, cp, rcut);
  std::uint64_t visits = 0;
  for_each_tuple(dom, cp, rcut, [&](std::span<const int>) { ++visits; });
  EXPECT_EQ(tc.accepted, visits);
}

}  // namespace
}  // namespace scmd
