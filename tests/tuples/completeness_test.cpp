// Property tests for the paper's central theorems: n-completeness of the
// SC pattern (Theorem 2), path-shift invariance (Theorem 1), and
// reflective invariance (Lemma 3), checked on random atom configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pattern/generate.hpp"
#include "support/rng.hpp"
#include "tuples/ucp.hpp"

namespace scmd {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> pos;
  std::vector<int> type;
};

TestSystem random_system(int n, double side, std::uint64_t seed) {
  TestSystem s;
  s.box = Box::cubic(side);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    s.pos.push_back(
        {rng.uniform(0, side), rng.uniform(0, side), rng.uniform(0, side)});
    s.type.push_back(0);
  }
  return s;
}

std::vector<std::int64_t> canon(std::vector<std::int64_t> t) {
  std::vector<std::int64_t> r(t.rbegin(), t.rend());
  return std::min(t, r);
}

std::set<std::vector<std::int64_t>> enumerate_set(const TestSystem& s,
                                                  const Pattern& psi,
                                                  double rcut) {
  const CellGrid grid(s.box, rcut);
  const CellDomain dom =
      make_serial_domain(grid, halo_for(psi), s.pos, s.type);
  const CompiledPattern cp(psi);
  std::set<std::vector<std::int64_t>> out;
  const auto gids = dom.gids();
  for_each_tuple(dom, cp, rcut, [&](std::span<const int> t) {
    std::vector<std::int64_t> ids;
    for (int a : t) ids.push_back(gids[a]);
    out.insert(canon(std::move(ids)));
  });
  return out;
}

/// Brute-force Γ*(n): all distinct-atom chains with consecutive
/// min-image distances < rcut, canonicalized under reflection.
std::set<std::vector<std::int64_t>> brute_force_chains(const TestSystem& s,
                                                       int n, double rcut) {
  const int N = static_cast<int>(s.pos.size());
  const double rc2 = rcut * rcut;
  std::set<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> chain;
  auto extend = [&](auto&& self) -> void {
    if (static_cast<int>(chain.size()) == n) {
      out.insert(canon(chain));
      return;
    }
    for (std::int64_t next = 0; next < N; ++next) {
      if (std::find(chain.begin(), chain.end(), next) != chain.end())
        continue;
      if (!chain.empty()) {
        const auto prev = static_cast<std::size_t>(chain.back());
        if (s.box.dist2(s.pos[prev],
                        s.pos[static_cast<std::size_t>(next)]) >= rc2)
          continue;
      }
      chain.push_back(next);
      self(self);
      chain.pop_back();
    }
  };
  extend(extend);
  return out;
}

class CompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(CompletenessTest, ScEqualsBruteForceGammaStar) {
  const int n = GetParam();
  // Box/atom count sized so the n-1 cell halo fits (grid >= halo).
  const double rcut = 2.5;
  const double side = n == 2 ? 10.0 : 13.0;
  for (std::uint64_t seed : {100u, 101u, 102u}) {
    const TestSystem s = random_system(n == 4 ? 25 : 40, side, seed + n);
    EXPECT_EQ(enumerate_set(s, make_sc(n), rcut),
              brute_force_chains(s, n, rcut))
        << "n=" << n << " seed=" << seed;
  }
}

TEST_P(CompletenessTest, FsEqualsBruteForceGammaStar) {
  const int n = GetParam();
  const double rcut = 2.5;
  const double side = n == 2 ? 10.0 : 13.0;
  const TestSystem s = random_system(n == 4 ? 25 : 40, side, 200 + n);
  EXPECT_EQ(enumerate_set(s, generate_fs(n), rcut),
            brute_force_chains(s, n, rcut));
}

INSTANTIATE_TEST_SUITE_P(TupleLengths, CompletenessTest,
                         ::testing::Values(2, 3, 4));

TEST(ShiftInvarianceTest, SinglePathForceSetUnchangedByShift) {
  // Theorem 1 on real data: UCP(Ω, {p}) == UCP(Ω, {p + Δ}).
  const TestSystem s = random_system(60, 12.0, 300);
  const double rcut = 3.0;
  Rng rng(301);
  for (int trial = 0; trial < 10; ++trial) {
    // A random unit-step path of length 3.
    Path p;
    p.push_back({0, 0, 0});
    for (int k = 0; k < 2; ++k) {
      p.push_back(p[k] + Int3{static_cast<int>(rng.uniform_index(3)) - 1,
                              static_cast<int>(rng.uniform_index(3)) - 1,
                              static_cast<int>(rng.uniform_index(3)) - 1});
    }
    const Int3 delta{static_cast<int>(rng.uniform_index(3)) - 1,
                     static_cast<int>(rng.uniform_index(3)) - 1,
                     static_cast<int>(rng.uniform_index(3)) - 1};
    Pattern single(3);
    single.add(p);
    single.set_collapsed(true);
    Pattern shifted(3);
    shifted.add(p.shifted(delta));
    shifted.set_collapsed(true);
    EXPECT_EQ(enumerate_set(s, single, rcut),
              enumerate_set(s, shifted, rcut))
        << "trial " << trial;
  }
}

TEST(ReflectiveInvarianceTest, TwinPathsGenerateSameForceSet) {
  // Lemma 3 on real data: σ(p') = σ(p^{-1}) => same force set.
  const TestSystem s = random_system(60, 12.0, 302);
  const double rcut = 3.0;
  Rng rng(303);
  for (int trial = 0; trial < 10; ++trial) {
    Path p;
    p.push_back({0, 0, 0});
    for (int k = 0; k < 2; ++k) {
      p.push_back(p[k] + Int3{static_cast<int>(rng.uniform_index(3)) - 1,
                              static_cast<int>(rng.uniform_index(3)) - 1,
                              static_cast<int>(rng.uniform_index(3)) - 1});
    }
    const Path twin = p.inverse().shifted(-p[2]);  // RPT(p), Lemma 6
    Pattern a(3), b(3);
    a.add(p);
    a.set_collapsed(true);
    b.add(twin);
    b.set_collapsed(true);
    EXPECT_EQ(enumerate_set(s, a, rcut), enumerate_set(s, b, rcut))
        << "trial " << trial;
  }
}

TEST(CutoffSweepTest, TupleCountGrowsMonotonicallyWithCutoff) {
  const TestSystem s = random_system(80, 15.0, 304);
  std::size_t prev = 0;
  for (double rcut : {1.5, 2.0, 2.5, 3.0}) {
    const auto tuples = enumerate_set(s, make_sc(2), rcut);
    EXPECT_GE(tuples.size(), prev);
    prev = tuples.size();
  }
}

TEST(EmptySystemTest, NoTuplesFromIsolatedAtoms) {
  // Atoms farther apart than the cutoff produce no tuples.
  TestSystem s;
  s.box = Box::cubic(30.0);
  for (int i = 0; i < 3; ++i) {
    s.pos.push_back({5.0 + i * 10.0, 5.0, 5.0});
    s.type.push_back(0);
  }
  EXPECT_TRUE(enumerate_set(s, make_sc(2), 2.0).empty());
  EXPECT_TRUE(enumerate_set(s, make_sc(3), 2.0).empty());
}

}  // namespace
}  // namespace scmd
