// Prefix-sharing (trie) enumeration must stream exactly the same tuples
// as the paper's per-path enumeration while doing no more search work.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "pattern/generate.hpp"
#include "potentials/lj.hpp"
#include "support/rng.hpp"
#include "tuples/ucp.hpp"

namespace scmd {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> pos;
  std::vector<int> type;
};

TestSystem random_system(int n, double side, std::uint64_t seed) {
  TestSystem s;
  s.box = Box::cubic(side);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    s.pos.push_back(
        {rng.uniform(0, side), rng.uniform(0, side), rng.uniform(0, side)});
    s.type.push_back(0);
  }
  return s;
}

using TupleSet = std::multiset<std::vector<std::int64_t>>;

TupleSet collect(const CellDomain& dom, const CompiledPattern& cp,
                 double rcut, bool shared, TupleCounters* tc = nullptr) {
  TupleSet out;
  const auto gids = dom.gids();
  enumerate_tuples(
      shared, dom, cp, rcut,
      [&](std::span<const int> t) {
        std::vector<std::int64_t> ids;
        for (int a : t) ids.push_back(gids[a]);
        std::vector<std::int64_t> rev(ids.rbegin(), ids.rend());
        out.insert(std::min(ids, rev));
      },
      tc);
  return out;
}

class TrieEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(TrieEquivalenceTest, SameTuplesLessOrEqualWork) {
  const auto [n, use_sc] = GetParam();
  const TestSystem s = random_system(60, 13.0, 400 + n);
  const double rcut = 2.5;
  const Pattern psi = use_sc ? make_sc(n) : generate_fs(n);
  const CellGrid grid(s.box, rcut);
  const CellDomain dom =
      make_serial_domain(grid, halo_for(psi), s.pos, s.type);
  const CompiledPattern cp(psi);

  TupleCounters flat, shared;
  const TupleSet a = collect(dom, cp, rcut, false, &flat);
  const TupleSet b = collect(dom, cp, rcut, true, &shared);
  EXPECT_EQ(a, b);
  EXPECT_EQ(flat.accepted, shared.accepted);
  EXPECT_EQ(flat.chain_candidates, shared.chain_candidates);
  EXPECT_LE(shared.search_steps, flat.search_steps);
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndLengths, TrieEquivalenceTest,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Bool()));

TEST(TrieStructureTest, FullShellSharesTheRoot) {
  // All FS paths start at v0 = 0: a single root.
  const CompiledPattern fs(generate_fs(3));
  EXPECT_EQ(fs.root_end(), 1);
  // Node count = trie size: 1 + 27 + 729 for FS(3).
  EXPECT_EQ(fs.nodes().size(), 1u + 27u + 729u);
}

TEST(TrieStructureTest, OcShiftScattersRoots) {
  // OC-shift translates paths individually, destroying the common root —
  // the structural reason prefix sharing helps FS more than SC.
  const CompiledPattern sc(make_sc(3));
  EXPECT_GT(sc.root_end(), 1);
}

TEST(TrieStructureTest, LeafCountEqualsPathCount) {
  for (const Pattern& psi : {make_sc(3), generate_fs(2), make_sc(4)}) {
    const CompiledPattern cp(psi);
    std::size_t leaves = 0;
    for (const TrieNode& node : cp.nodes()) {
      if (node.child_begin == node.child_end) ++leaves;
    }
    EXPECT_EQ(leaves, psi.size());
  }
}

TEST(TrieStrategyTest, SharedPrefixEngineMatchesDefault) {
  Rng rng(150);
  const LennardJones lj;
  const ParticleSystem base = make_gas(lj, 400, 4.0, 1.0, rng);
  auto run = [&](const std::string& name) {
    ParticleSystem sys = base;
    SerialEngineConfig cfg;
    cfg.dt = 0.004;
    SerialEngine engine(sys, lj, make_strategy(name, lj), cfg);
    for (int s = 0; s < 10; ++s) engine.step();
    return std::vector<Vec3>(sys.positions().begin(), sys.positions().end());
  };
  const auto flat = run("SC");
  const auto shared = run("SC+p");
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(flat[i].x, shared[i].x, 1e-9) << i;
    EXPECT_NEAR(flat[i].y, shared[i].y, 1e-9) << i;
    EXPECT_NEAR(flat[i].z, shared[i].z, 1e-9) << i;
  }
}

TEST(TrieStrategyTest, NameSuffixParsing) {
  const LennardJones lj;
  EXPECT_EQ(make_strategy("SC+p", lj)->name(), "SC+p");
  EXPECT_EQ(make_strategy("FS:2+p", lj)->name(), "FS/k=2+p");
}

}  // namespace
}  // namespace scmd
