// Unit coverage for the persistent tuple-list building blocks
// (docs/TUPLECACHE.md): periodic image snapping, frozen slot tables, and
// the Verlet-skin retention state machine.

#include "tuples/tuple_list.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cell/domain.hpp"
#include "geom/box.hpp"
#include "support/error.hpp"

namespace scmd {
namespace {

TEST(ImageNearTest, PicksThePeriodicImageNearestTheReference) {
  const Box box = Box::cubic(10.0);
  // Same image: unchanged.
  Vec3 r = box.image_near({1.0, 2.0, 3.0}, {1.2, 2.2, 3.2});
  EXPECT_NEAR(r.x, 1.0, 1e-12);
  EXPECT_NEAR(r.y, 2.0, 1e-12);
  EXPECT_NEAR(r.z, 3.0, 1e-12);
  // An atom that wrapped below zero: wrapped value 9.9, previous frame
  // value near 0 -> the nearest image is -0.1.
  r = box.image_near({9.9, 5.0, 5.0}, {0.05, 5.0, 5.0});
  EXPECT_NEAR(r.x, -0.1, 1e-12);
  // A ghost slot in a +L shifted frame keeps that frame.
  r = box.image_near({0.3, 5.0, 5.0}, {10.2, 5.0, 5.0});
  EXPECT_NEAR(r.x, 10.3, 1e-12);
}

CellDomain tiny_domain(const Box& box, const std::vector<Vec3>& pos,
                       const std::vector<int>& type) {
  const CellGrid grid(box, 3.0);
  return make_serial_domain(grid, HaloSpec{{1, 1, 1}, {1, 1, 1}}, pos, type);
}

TEST(TupleListTest, ResetFreezesTheDomainTable) {
  const Box box = Box::cubic(9.0);
  const std::vector<Vec3> pos{{1, 1, 1}, {2, 2, 2}, {8, 8, 8}};
  const std::vector<int> type{0, 1, 0};
  const CellDomain dom = tiny_domain(box, pos, type);

  TupleList list;
  list.reset(dom, 3);
  EXPECT_EQ(list.n(), 3);
  EXPECT_EQ(list.num_slots(), dom.num_atoms());
  EXPECT_EQ(list.num_tuples(), 0);
  for (int s = 0; s < list.num_slots(); ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    EXPECT_EQ(list.types()[si], dom.types()[si]);
    EXPECT_EQ(list.refs()[si], dom.local_refs()[si]);
    EXPECT_NEAR(list.positions()[si].x, dom.positions()[si].x, 0.0);
  }

  list.append_flat({0, 1, 2, 2, 1, 0});
  EXPECT_EQ(list.num_tuples(), 2);
  EXPECT_EQ(list.tuples()[3], 2);
  // Flat length must be a multiple of n.
  EXPECT_THROW(list.append_flat({0, 1}), Error);
}

TEST(TupleListTest, RefreshKeepsEachSlotInItsBuildFrame) {
  const Box box = Box::cubic(9.0);
  // One atom near the lower x face: the serial domain holds its primary
  // copy plus periodic ghost copies in shifted frames.
  const std::vector<Vec3> pos{{0.1, 4.5, 4.5}};
  const std::vector<int> type{0};
  const CellDomain dom = tiny_domain(box, pos, type);

  TupleList list;
  list.reset(dom, 2);
  const std::vector<Vec3> before(list.positions().begin(),
                                 list.positions().end());

  // The source atom drifts across the boundary and re-wraps to 8.95.
  const Vec3 moved{8.95, 4.6, 4.5};
  list.refresh_positions(box, [&](int ref) -> const Vec3& {
    EXPECT_EQ(ref, 0);
    return moved;
  });

  // Every slot (primary and ghosts alike) must move by the physical
  // displacement (-0.15, +0.1, 0), not jump by a box length.
  for (int s = 0; s < list.num_slots(); ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    EXPECT_NEAR(list.positions()[si].x - before[si].x, -0.15, 1e-12) << s;
    EXPECT_NEAR(list.positions()[si].y - before[si].y, 0.1, 1e-12) << s;
    EXPECT_NEAR(list.positions()[si].z - before[si].z, 0.0, 1e-12) << s;
  }
}

TEST(TupleListCacheTest, DisplacementTriggerUsesMinimumImage) {
  TupleCacheConfig cfg;
  cfg.enabled = true;
  cfg.skin = 1.0;
  TupleListCache cache(cfg);
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.valid());

  const Box box = Box::cubic(10.0);
  std::vector<Vec3> pos{{0.2, 0.0, 0.0}, {5.0, 5.0, 5.0}};
  cache.mark_built({pos.data(), pos.size()});
  EXPECT_TRUE(cache.valid());
  EXPECT_EQ(cache.max_displacement2(box, {pos.data(), pos.size()}), 0.0);

  // 0.2 -> 9.9 wrapped: the min-image displacement is 0.3, not 9.7.
  pos[0].x = 9.9;
  const double d2 = cache.max_displacement2(box, {pos.data(), pos.size()});
  EXPECT_NEAR(d2, 0.09, 1e-12);
  EXPECT_FALSE(cache.exceeds_skin(d2));  // skin/2 = 0.5

  pos[1].y += 0.51;
  EXPECT_TRUE(cache.exceeds_skin(
      cache.max_displacement2(box, {pos.data(), pos.size()})));

  cache.invalidate();
  EXPECT_FALSE(cache.valid());

  // A different atom count means the snapshot is stale: loud failure.
  pos.push_back({1.0, 1.0, 1.0});
  EXPECT_THROW(cache.max_displacement2(box, {pos.data(), pos.size()}),
               Error);
}

TEST(TupleListCacheTest, ZeroSkinRetainsNothing) {
  TupleCacheConfig cfg;
  cfg.enabled = true;
  cfg.skin = 0.0;
  TupleListCache cache(cfg);
  EXPECT_FALSE(cache.exceeds_skin(0.0));
  EXPECT_TRUE(cache.exceeds_skin(1e-30));
}

}  // namespace
}  // namespace scmd
