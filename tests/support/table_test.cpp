#include "support/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace scmd {
namespace {

TEST(TableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), Error);
}

TEST(TableTest, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), Error);
}

TEST(TableTest, AlignedOutputContainsHeadersAndValues) {
  Table t({"name", "count"});
  t.add_row({std::string("alpha"), 42LL});
  t.add_row({std::string("b"), 7LL});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(TableTest, CsvOutputIsParsable) {
  Table t({"x", "y"});
  t.set_precision(2);
  t.add_row({1LL, 2.5});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.50\n");
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table t({"v"});
  t.add_row({std::string("a,b\"c")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n\"a,b\"\"c\"\n");
}

TEST(TableTest, SaveCsvRoundTrips) {
  Table t({"k"});
  t.add_row({3LL});
  const std::string path = "/tmp/scmd_table_test.csv";
  t.save_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k");
  std::getline(f, line);
  EXPECT_EQ(line, "3");
  std::remove(path.c_str());
}

TEST(TableTest, TitleAppearsInAlignedOutputOnly) {
  Table t({"c"});
  t.set_title("My Table");
  t.add_row({1LL});
  std::ostringstream aligned, csv;
  t.print(aligned);
  t.print_csv(csv);
  EXPECT_NE(aligned.str().find("My Table"), std::string::npos);
  EXPECT_EQ(csv.str().find("My Table"), std::string::npos);
}

TEST(TableTest, PrecisionControlsDoubleRendering) {
  Table t({"v"});
  t.set_precision(1);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n3.1\n");
}

}  // namespace
}  // namespace scmd
