#include "support/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "support/error.hpp"

namespace scmd {
namespace {

TEST(ConfigTest, ParsesKeysValuesAndComments) {
  const Config cfg = Config::parse(
      "# a comment\n"
      "field = lj\n"
      "\n"
      "steps = 100   # trailing comment\n"
      "  dt_fs =  0.5\n");
  EXPECT_EQ(cfg.get("field", ""), "lj");
  EXPECT_EQ(cfg.get_int("steps", 0), 100);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt_fs", 0.0), 0.5);
  ASSERT_EQ(cfg.keys().size(), 3u);
  EXPECT_EQ(cfg.keys()[0], "field");
}

TEST(ConfigTest, FallbacksForMissingKeys) {
  const Config cfg = Config::parse("a = 1\n");
  EXPECT_EQ(cfg.get("b", "dft"), "dft");
  EXPECT_EQ(cfg.get_int("b", 7), 7);
  EXPECT_FALSE(cfg.has("b"));
  EXPECT_TRUE(cfg.has("a"));
}

TEST(ConfigTest, BooleanSpellings) {
  const Config cfg = Config::parse("x = yes\ny = off\n");
  EXPECT_TRUE(cfg.get_bool("x", false));
  EXPECT_FALSE(cfg.get_bool("y", true));
  EXPECT_THROW(Config::parse("z = maybe\n").get_bool("z", false), Error);
}

TEST(ConfigTest, RejectsMalformedLines) {
  EXPECT_THROW(Config::parse("not a key value\n"), Error);
  EXPECT_THROW(Config::parse("= value\n"), Error);
  EXPECT_THROW(Config::parse("a = 1\na = 2\n"), Error);  // duplicate
}

TEST(ConfigTest, RejectsBadNumbers) {
  const Config cfg = Config::parse("n = 12x\nf = 1.2.3\n");
  EXPECT_THROW(cfg.get_int("n", 0), Error);
  EXPECT_THROW(cfg.get_double("f", 0.0), Error);
}

TEST(ConfigTest, RequireKnownCatchesTypos) {
  const Config cfg = Config::parse("field = lj\nstepz = 10\n");
  EXPECT_THROW(cfg.require_known({"field", "steps"}), Error);
  Config::parse("field = lj\n").require_known({"field"});  // no throw
}

TEST(ConfigTest, LoadsFromFile) {
  const std::string path = "/tmp/scmd_config_test.conf";
  {
    std::ofstream f(path);
    f << "field = morse\nsteps = 3\n";
  }
  const Config cfg = Config::load(path);
  EXPECT_EQ(cfg.get("field", ""), "morse");
  std::remove(path.c_str());
  EXPECT_THROW(Config::load("/tmp/scmd_missing.conf"), Error);
}

}  // namespace
}  // namespace scmd
