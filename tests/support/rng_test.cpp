#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "support/error.hpp"

namespace scmd {
namespace {

TEST(SplitMix64Test, ProducesKnownlyDistinctSequence) {
  SplitMix64 sm(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  std::array<int, 7> counts{};
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, trials / 7, trials / 7 / 5);
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(10);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

}  // namespace
}  // namespace scmd
