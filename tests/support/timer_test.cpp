#include "support/timer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "geom/int3.hpp"
#include "geom/vec3.hpp"
#include "pattern/generate.hpp"

namespace scmd {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);  // generous: loaded CI machines
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(AccumTimerTest, AccumulatesIntervals) {
  AccumTimer t;
  for (int i = 0; i < 3; ++i) {
    t.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.stop();
  }
  EXPECT_GE(t.total(), 0.012);
  t.clear();
  EXPECT_EQ(t.total(), 0.0);
}

TEST(AccumTimerTest, StopWithoutStartIsANoOp) {
  AccumTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();  // used to accumulate time since construction
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_FALSE(t.running());

  t.start();
  t.stop();
  t.stop();  // second stop must not add the gap since the first
  const double after_one_interval = t.total();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  EXPECT_EQ(t.total(), after_one_interval);
}

TEST(AccumTimerTest, RestartWhileRunningDropsTheOpenInterval) {
  AccumTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.start();  // restart: the 20ms open interval must not be counted
  EXPECT_TRUE(t.running());
  t.stop();
  EXPECT_LT(t.total(), 0.015);
}

TEST(AccumTimerTest, ClearResetsRunningState) {
  AccumTimer t;
  t.start();
  t.clear();
  EXPECT_FALSE(t.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();  // no open interval after clear()
  EXPECT_EQ(t.total(), 0.0);
}

TEST(StreamingTest, GeomAndPatternTypesPrint) {
  std::ostringstream os;
  os << Int3{1, -2, 3} << ' ' << Vec3{0.5, 0, -1} << ' '
     << Path{{0, 0, 0}, {1, 0, 0}} << ' ' << make_hs();
  const std::string s = os.str();
  EXPECT_NE(s.find("(1, -2, 3)"), std::string::npos);
  EXPECT_NE(s.find("(0.5, 0, -1)"), std::string::npos);
  EXPECT_NE(s.find("[(0, 0, 0) (1, 0, 0)]"), std::string::npos);
  EXPECT_NE(s.find("|Psi|=14"), std::string::npos);
}

}  // namespace
}  // namespace scmd
