#include "support/cli.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace scmd {
namespace {

Cli parse(std::vector<const char*> argv, std::vector<std::string> known = {}) {
  argv.insert(argv.begin(), "prog");
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(known));
}

TEST(CliTest, ParsesEqualsForm) {
  const Cli cli = parse({"--atoms=100"});
  EXPECT_EQ(cli.get_int("atoms", 0), 100);
}

TEST(CliTest, ParsesSpaceForm) {
  const Cli cli = parse({"--atoms", "250"});
  EXPECT_EQ(cli.get_int("atoms", 0), 250);
}

TEST(CliTest, BareFlagIsTrue) {
  const Cli cli = parse({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(CliTest, FallbacksWhenMissing) {
  const Cli cli = parse({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cli.get("s", "dft"), "dft");
  EXPECT_FALSE(cli.get_bool("b", false));
}

TEST(CliTest, DoubleParsing) {
  const Cli cli = parse({"--dt=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("dt", 0.0), 0.25);
}

TEST(CliTest, BoolFalseSpellings) {
  for (const char* v : {"0", "false", "no", "off"}) {
    const Cli cli = parse({"--flag", v});
    EXPECT_FALSE(cli.get_bool("flag", true)) << v;
  }
}

TEST(CliTest, RejectsUnknownFlagWhenKnownListGiven) {
  EXPECT_THROW(parse({"--oops=1"}, {"atoms"}), Error);
}

TEST(CliTest, AcceptsKnownFlag) {
  const Cli cli = parse({"--atoms=5"}, {"atoms"});
  EXPECT_EQ(cli.get_int("atoms", 0), 5);
}

TEST(CliTest, RejectsNonIntegerValue) {
  const Cli cli = parse({"--n=abc"});
  EXPECT_THROW(cli.get_int("n", 0), Error);
}

TEST(CliTest, PositionalArgumentsPreserved) {
  const Cli cli = parse({"first", "--k=1", "second"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

}  // namespace
}  // namespace scmd
