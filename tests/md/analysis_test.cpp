#include "md/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

/// Ideal-gas positions: g(r) must be ~1 everywhere.
TEST(RdfTest, IdealGasIsFlat) {
  Rng rng(140);
  ParticleSystem sys(Box::cubic(20.0), {1.0});
  for (int i = 0; i < 4000; ++i) {
    sys.add_atom({rng.uniform(0, 20), rng.uniform(0, 20),
                  rng.uniform(0, 20)},
                 {}, 0);
  }
  const Rdf rdf = compute_rdf(sys, 0, 0, 5.0, 25);
  // Skip the first bins (few counts, noisy).
  for (std::size_t b = 5; b < rdf.g.size(); ++b) {
    EXPECT_NEAR(rdf.g[b], 1.0, 0.15) << "bin " << b;
  }
}

TEST(RdfTest, SimpleCubicLatticePeaksAtSpacing) {
  // Perfect SC lattice with spacing a: first peak of g(r) at r = a.
  ParticleSystem sys(Box::cubic(12.0), {1.0});
  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y)
      for (int z = 0; z < 6; ++z)
        sys.add_atom({x * 2.0 + 1.0, y * 2.0 + 1.0, z * 2.0 + 1.0}, {}, 0);
  // Restrict the range to the first shell: at this spacing the 2nd-shell
  // peak (12 neighbors at a*sqrt(2)) has comparable g(r) height.
  const Rdf rdf = compute_rdf(sys, 0, 0, 2.5, 25);
  EXPECT_NEAR(rdf.peak_position(1.0), 2.0, 0.15);
}

TEST(RdfTest, CrossSpeciesCountsOnlyMatchingPairs) {
  // Two interleaved species: the A-B RDF must show the A-B distance, not
  // the A-A one.
  ParticleSystem sys(Box::cubic(12.0), {1.0, 1.0});
  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y)
      for (int z = 0; z < 6; ++z) {
        sys.add_atom({x * 2.0, y * 2.0, z * 2.0}, {}, 0);
        sys.add_atom({x * 2.0 + 1.0, y * 2.0, z * 2.0}, {}, 1);
      }
  const Rdf ab = compute_rdf(sys, 0, 1, 3.5, 70);
  EXPECT_NEAR(ab.peak_position(0.5), 1.0, 0.1);
}

TEST(RdfTest, RejectsOversizedCutoff) {
  ParticleSystem sys(Box::cubic(9.0), {1.0});
  sys.add_atom({1, 1, 1}, {}, 0);
  EXPECT_THROW(compute_rdf(sys, 0, 0, 4.0, 10), Error);
}

TEST(AdfTest, RightAngleLattice) {
  // On a simple-cubic lattice with bond length = spacing, the nearest
  // neighbors of each site sit along +-x/+-y/+-z: angles are 90 and 180
  // degrees, with 90 four times as frequent (12 right angles vs 3
  // straight ones per site).
  ParticleSystem sys(Box::cubic(12.0), {1.0});
  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y)
      for (int z = 0; z < 6; ++z)
        sys.add_atom({x * 2.0 + 1.0, y * 2.0 + 1.0, z * 2.0 + 1.0}, {}, 0);
  const AngleDistribution adf = compute_adf(sys, 0, 0, 2.5, 36);
  EXPECT_NEAR(adf.peak_angle_deg(), 90.0, 5.0);
}

TEST(CoordinationTest, CubicLatticeHasSixNeighbors) {
  ParticleSystem sys(Box::cubic(12.0), {1.0});
  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y)
      for (int z = 0; z < 6; ++z)
        sys.add_atom({x * 2.0 + 1.0, y * 2.0 + 1.0, z * 2.0 + 1.0}, {}, 0);
  EXPECT_NEAR(mean_coordination(sys, 0, 0, 2.5), 6.0, 1e-12);
}

TEST(MsdTest, ZeroForIdenticalSnapshots) {
  Rng rng(141);
  const ParticleSystem sys =
      make_cubic_lattice(Box::cubic(10.0), 1.0, 100, 0.2, rng);
  EXPECT_DOUBLE_EQ(mean_square_displacement(sys, sys), 0.0);
}

TEST(MsdTest, UniformShiftMeasuredThroughBoundary) {
  Rng rng(142);
  ParticleSystem a = make_cubic_lattice(Box::cubic(10.0), 1.0, 64, 0.0, rng);
  ParticleSystem b = a;
  for (Vec3& p : b.positions()) p = b.box().wrap(p + Vec3{9.5, 0, 0});
  // Through the periodic boundary the true displacement is 0.5.
  EXPECT_NEAR(mean_square_displacement(a, b), 0.25, 1e-9);
}

TEST(SilicaStructureTest, RelaxedSilicaHasPhysicalBonding) {
  // After brief thermostatted MD from the cristobalite-like start, the
  // Vashishta silica network must keep: Si-O first peak near 1.5-1.7 Å,
  // Si coordination ~4, and an O-Si-O angle distribution peaked near
  // tetrahedral.
  Rng rng(143);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(648, 2.2, 300.0, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  const BerendsenThermostat thermo(300.0, 5.0 * units::kFemtosecond);
  for (int s = 0; s < 150; ++s) engine.step(thermo);

  const Rdf si_o = compute_rdf(sys, kSilicon, kOxygen, 4.0, 80);
  EXPECT_NEAR(si_o.peak_position(1.0), 1.6, 0.2);

  const double coord = mean_coordination(sys, kSilicon, kOxygen, 2.1);
  EXPECT_GT(coord, 3.5);
  EXPECT_LT(coord, 4.5);

  const AngleDistribution osio = compute_adf(sys, kSilicon, kOxygen, 2.1, 36);
  EXPECT_NEAR(osio.peak_angle_deg(), 109.0, 15.0);
}

}  // namespace
}  // namespace scmd
