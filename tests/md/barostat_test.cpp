#include "md/barostat.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "engines/observables.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/lj.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(BarostatTest, RejectsBadParameters) {
  EXPECT_THROW(BerendsenBarostat(0.0, 0.0), Error);
  EXPECT_THROW(BerendsenBarostat(0.0, 1.0, -1.0), Error);
}

TEST(RescaleTest, ScalesBoxAndPositionsTogether) {
  Rng rng(230);
  ParticleSystem sys = make_cubic_lattice(Box::cubic(10.0), 1.0, 64, 0.1,
                                          rng);
  const Vec3 before = sys.positions()[10];
  rescale_system(sys, 1.1);
  EXPECT_DOUBLE_EQ(sys.box().length(0), 11.0);
  EXPECT_NEAR(sys.positions()[10].x, before.x * 1.1, 1e-12);
  // Fractional coordinates preserved.
  EXPECT_NEAR(sys.positions()[10].x / sys.box().length(0), before.x / 10.0,
              1e-12);
}

TEST(BarostatTest, OverpressureExpandsUnderpressureShrinks) {
  Rng rng(231);
  ParticleSystem expand = make_cubic_lattice(Box::cubic(10.0), 1.0, 64, 0.1,
                                             rng);
  const BerendsenBarostat baro(0.0, 1.0);
  // Measured pressure above target -> box must grow.
  const double mu_up = baro.apply(expand, +1.0, 0.01);
  EXPECT_GT(mu_up, 1.0);
  // Below target -> shrink.
  const double mu_dn = baro.apply(expand, -1.0, 0.01);
  EXPECT_LT(mu_dn, 1.0);
}

TEST(BarostatTest, VolumeStepClamped) {
  Rng rng(232);
  ParticleSystem sys = make_cubic_lattice(Box::cubic(10.0), 1.0, 64, 0.1,
                                          rng);
  const BerendsenBarostat baro(0.0, 1e-6);  // absurdly stiff coupling
  const double mu = baro.apply(sys, 1e9, 1.0);
  EXPECT_LE(mu, std::cbrt(1.05) + 1e-12);
}

TEST(NptTest, CompressedSolidRelaxesTowardTargetPressure) {
  // Start an LJ crystal compressed ~10% in volume; NPT with target P = 0
  // must expand the box and bring the pressure down.
  Rng rng(233);
  const LennardJones lj;
  ParticleSystem sys =
      make_cubic_lattice(Box::cubic(7.7), 1.0, 512, 0.02, rng);
  thermalize(sys, 0.2 / units::kBoltzmann * 0.1, rng);

  SerialEngineConfig cfg;
  cfg.dt = 0.004;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  const double p0 = measure_pressure(sys, lj).total();
  ASSERT_GT(p0, 0.0);  // compressed: positive pressure

  const BerendsenBarostat baro(0.0, 0.4);
  const double v0 = sys.box().volume();
  for (int block = 0; block < 30; ++block) {
    for (int s = 0; s < 5; ++s) engine.step();
    const double p = measure_pressure(sys, lj).total();
    baro.apply(sys, p, 5 * cfg.dt);
    engine.compute_forces();  // grids/forces for the rescaled box
  }
  const double p1 = measure_pressure(sys, lj).total();
  EXPECT_GT(sys.box().volume(), v0);     // expanded
  EXPECT_LT(std::abs(p1), std::abs(p0) * 0.5);  // pressure halved or better
}

}  // namespace
}  // namespace scmd
