#include "md/system.hpp"

#include <gtest/gtest.h>

#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/lj.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(ParticleSystemTest, AddAtomWrapsPosition) {
  ParticleSystem sys(Box::cubic(10.0), {1.0});
  sys.add_atom({12.0, -1.0, 5.0}, {}, 0);
  EXPECT_NEAR(sys.positions()[0].x, 2.0, 1e-12);
  EXPECT_NEAR(sys.positions()[0].y, 9.0, 1e-12);
}

TEST(ParticleSystemTest, RejectsUnknownSpecies) {
  ParticleSystem sys(Box::cubic(10.0), {1.0});
  EXPECT_THROW(sys.add_atom({0, 0, 0}, {}, 1), Error);
  EXPECT_THROW(sys.add_atom({0, 0, 0}, {}, -1), Error);
}

TEST(ParticleSystemTest, RejectsBadMasses) {
  EXPECT_THROW(ParticleSystem(Box::cubic(1.0), {}), Error);
  EXPECT_THROW(ParticleSystem(Box::cubic(1.0), {-1.0}), Error);
}

TEST(ParticleSystemTest, KineticEnergyAndTemperature) {
  ParticleSystem sys(Box::cubic(10.0), {2.0});
  sys.add_atom({1, 1, 1}, {3.0, 0.0, 0.0}, 0);
  EXPECT_DOUBLE_EQ(sys.kinetic_energy(), 0.5 * 2.0 * 9.0);
  EXPECT_NEAR(sys.temperature(),
              2.0 * sys.kinetic_energy() / (3.0 * units::kBoltzmann), 1e-9);
}

TEST(ParticleSystemTest, MomentumZeroing) {
  ParticleSystem sys(Box::cubic(10.0), {1.0, 4.0});
  sys.add_atom({1, 1, 1}, {1.0, 2.0, 3.0}, 0);
  sys.add_atom({2, 2, 2}, {-1.0, 0.5, 0.0}, 1);
  sys.zero_momentum();
  const Vec3 p = sys.total_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
  EXPECT_NEAR(p.z, 0.0, 1e-12);
}

TEST(ThermalizeTest, HitsTargetTemperature) {
  Rng rng(50);
  ParticleSystem sys = make_cubic_lattice(Box::cubic(20.0), 28.0, 1000, 0.1,
                                          rng);
  thermalize(sys, 300.0, rng);
  EXPECT_NEAR(sys.temperature(), 300.0, 25.0);
  const Vec3 p = sys.total_momentum();
  EXPECT_NEAR(p.norm(), 0.0, 1e-9);
}

TEST(BuildersTest, CubicLatticeExactCount) {
  Rng rng(51);
  const ParticleSystem sys =
      make_cubic_lattice(Box::cubic(10.0), 1.0, 123, 0.0, rng);
  EXPECT_EQ(sys.num_atoms(), 123);
}

TEST(BuildersTest, SilicaStoichiometryAndDensity) {
  Rng rng(52);
  const ParticleSystem sys = make_silica(3000, 2.2, 300.0, rng);
  EXPECT_EQ(sys.num_atoms(), 3000);
  int si = 0, o = 0;
  for (int t : sys.types()) (t == 0 ? si : o)++;
  EXPECT_NEAR(static_cast<double>(o) / si, 2.0, 0.05);
  // Mass density ~2.2 g/cc.
  double mass = 0.0;
  for (int i = 0; i < sys.num_atoms(); ++i) mass += sys.mass_of_atom(i);
  const double density = mass / sys.box().volume() * units::kAmuPerA3ToGcc;
  EXPECT_NEAR(density, 2.2, 0.05);
}

TEST(BuildersTest, SilicaAtomsInsideBox) {
  Rng rng(53);
  const ParticleSystem sys = make_silica(300, 2.2, 300.0, rng);
  for (const Vec3& r : sys.positions()) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(r[a], 0.0);
      EXPECT_LT(r[a], sys.box().length(a));
    }
  }
}

TEST(BuildersTest, GasDensityMatchesRequest) {
  Rng rng(54);
  const LennardJones lj;
  const ParticleSystem sys = make_gas(lj, 500, 8.0, 1.0, rng);
  const double cells = sys.box().volume() /
                       (lj.rcut(2) * lj.rcut(2) * lj.rcut(2));
  EXPECT_NEAR(500.0 / cells, 8.0, 0.01);
}

}  // namespace
}  // namespace scmd
