// Time-integration physics checks through the serial engine: energy
// conservation in NVE, thermostat convergence, momentum conservation.

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(VelocityVerletTest, RejectsNonPositiveDt) {
  EXPECT_THROW(VelocityVerlet(0.0), Error);
}

TEST(VelocityVerletTest, FreeParticleMovesLinearly) {
  ParticleSystem sys(Box::cubic(100.0), {1.0});
  sys.add_atom({1, 1, 1}, {2.0, 0.0, 0.0}, 0);
  const VelocityVerlet vv(0.5);
  for (int s = 0; s < 4; ++s) {
    vv.kick_drift(sys);
    vv.kick(sys);  // zero forces
  }
  EXPECT_NEAR(sys.positions()[0].x, 1.0 + 2.0 * 0.5 * 4, 1e-12);
}

TEST(NveTest, LennardJonesEnergyConservation) {
  Rng rng(60);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 256, 4.0, 0.5, rng);
  // In LJ reduced-ish units (mass 1, eps 1) a stable step is ~0.005 t*.
  SerialEngineConfig cfg;
  cfg.dt = 0.005;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 100; ++s) engine.step();
  const double e1 = engine.total_energy();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.01 + 0.05);
}

TEST(NveTest, MomentumConserved) {
  Rng rng(61);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 200, 4.0, 0.8, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.005;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  for (int s = 0; s < 50; ++s) engine.step();
  EXPECT_NEAR(sys.total_momentum().norm(), 0.0, 1e-8);
}

TEST(NveTest, SilicaEnergyConservation) {
  Rng rng(62);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(648, 2.2, 300.0, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  // Let the jittered lattice relax a little under a thermostat first.
  const BerendsenThermostat thermo(300.0, 20.0 * units::kFemtosecond);
  for (int s = 0; s < 30; ++s) engine.step(thermo);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 60; ++s) engine.step();
  const double e1 = engine.total_energy();
  // eV-scale system energy; drift must stay well under k_B T per atom.
  EXPECT_NEAR(e1, e0, 0.02 * sys.num_atoms() * units::kBoltzmann * 300.0 +
                          1e-3 * std::abs(e0));
}

TEST(ThermostatTest, RescalingConvergesToTargetInIsolation) {
  // Pure velocity rescaling (no forces): T must converge exactly.
  Rng rng(63);
  ParticleSystem sys(Box::cubic(50.0), {1.0});
  for (int i = 0; i < 64; ++i) {
    sys.add_atom({1.0 * i, 0.5, 0.5},
                 {rng.normal(0, 0.1), rng.normal(0, 0.1), rng.normal(0, 0.1)},
                 0);
  }
  const BerendsenThermostat thermo(300.0, 10.0);
  for (int s = 0; s < 600; ++s) thermo.apply(sys, 1.0);
  EXPECT_NEAR(sys.temperature(), 300.0, 1.0);
}

TEST(ThermostatTest, HoldsEquilibratedSilicaNearTarget) {
  Rng rng(64);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(648, 2.2, 300.0, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  // Strong coupling while the jittered lattice relaxes and dumps heat.
  const BerendsenThermostat thermo(300.0, 1.0 * units::kFemtosecond);
  for (int s = 0; s < 250; ++s) engine.step(thermo);
  // The thermostat must hold T in a band around the target despite the
  // relaxation heating.
  EXPECT_GT(sys.temperature(), 100.0);
  EXPECT_LT(sys.temperature(), 900.0);
}

TEST(ThermostatTest, RejectsBadParameters) {
  EXPECT_THROW(BerendsenThermostat(-1.0, 1.0), Error);
  EXPECT_THROW(BerendsenThermostat(300.0, 0.0), Error);
}

}  // namespace
}  // namespace scmd
