// Static vs dynamic n-tuple computation (paper Sec. 1): identical at the
// snapshot, diverging as atoms move — the motivation for dynamic
// range-limited tuple computation.

#include "md/static_list.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(StaticListTest, PairCountMatchesDynamicAtSnapshot) {
  Rng rng(180);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 300, 5.0, 1.0, rng);
  const StaticTupleList list = StaticTupleList::build(sys, 2, lj.rcut(2));
  SerialEngine engine(sys, lj, make_strategy("SC", lj));
  EXPECT_EQ(list.size(), engine.counters().tuples[2].accepted);
}

TEST(StaticListTest, ForcesMatchDynamicAtSnapshot) {
  Rng rng(181);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(648, 2.2, 300.0, rng);

  const StaticTupleList pairs = StaticTupleList::build(sys, 2, field.rcut(2));
  const StaticTupleList triplets =
      StaticTupleList::build(sys, 3, field.rcut(3));
  std::vector<Vec3> static_f(static_cast<std::size_t>(sys.num_atoms()));
  const double static_e = pairs.compute(sys, field, static_f) +
                          triplets.compute(sys, field, static_f);

  SerialEngine engine(sys, field, make_strategy("SC", field));
  EXPECT_NEAR(static_e, engine.potential_energy(),
              1e-8 * std::abs(engine.potential_energy()));
  for (int i = 0; i < sys.num_atoms(); ++i) {
    EXPECT_NEAR(static_f[static_cast<std::size_t>(i)].x, sys.forces()[i].x,
                1e-8)
        << i;
    EXPECT_NEAR(static_f[static_cast<std::size_t>(i)].y, sys.forces()[i].y,
                1e-8)
        << i;
  }
}

TEST(StaticListTest, ValidFractionStartsAtOneAndDecays) {
  Rng rng(182);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(648, 2.2, 1200.0, rng);  // hot: diffuses
  const StaticTupleList triplets =
      StaticTupleList::build(sys, 3, field.rcut(3));
  EXPECT_DOUBLE_EQ(triplets.valid_fraction(sys, field.rcut(3)), 1.0);

  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  for (int s = 0; s < 150; ++s) engine.step();
  const double frac = triplets.valid_fraction(sys, field.rcut(3));
  EXPECT_LT(frac, 1.0);
  EXPECT_GT(frac, 0.2);  // bonded network mostly persists on 75 fs
}

TEST(StaticListTest, StaleListMissesNewTuples) {
  // After motion, the dynamic enumeration finds tuples the frozen list
  // does not contain (and vice versa): the sets differ.
  Rng rng(183);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(648, 2.2, 1800.0, rng);
  const StaticTupleList before = StaticTupleList::build(sys, 3,
                                                        field.rcut(3));
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  for (int s = 0; s < 200; ++s) engine.step();
  const StaticTupleList after = StaticTupleList::build(sys, 3,
                                                       field.rcut(3));
  EXPECT_NE(before.size(), after.size());
}

TEST(StaticListTest, RejectsBadArguments) {
  Rng rng(184);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 200, 4.0, 1.0, rng);
  EXPECT_THROW(StaticTupleList::build(sys, 5, 2.0), Error);
  EXPECT_THROW(StaticTupleList::build(sys, 2, -1.0), Error);
  const StaticTupleList list = StaticTupleList::build(sys, 2, lj.rcut(2));
  std::vector<Vec3> too_small(3);
  EXPECT_THROW(list.compute(sys, lj, too_small), Error);
}

}  // namespace
}  // namespace scmd
