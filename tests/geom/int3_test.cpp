#include "geom/int3.hpp"

#include <gtest/gtest.h>

#include <climits>
#include <functional>
#include <set>

namespace scmd {
namespace {

TEST(Int3Test, ArithmeticIsComponentwise) {
  const Int3 a{1, 2, 3}, b{4, -5, 6};
  EXPECT_EQ(a + b, (Int3{5, -3, 9}));
  EXPECT_EQ(a - b, (Int3{-3, 7, -3}));
  EXPECT_EQ(-a, (Int3{-1, -2, -3}));
  EXPECT_EQ(a * 2, (Int3{2, 4, 6}));
}

TEST(Int3Test, CompoundAssignment) {
  Int3 a{1, 1, 1};
  a += {2, 3, 4};
  EXPECT_EQ(a, (Int3{3, 4, 5}));
  a -= {1, 1, 1};
  EXPECT_EQ(a, (Int3{2, 3, 4}));
}

TEST(Int3Test, IndexingMatchesMembers) {
  Int3 v{7, 8, 9};
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[1], 8);
  EXPECT_EQ(v[2], 9);
  v[1] = 42;
  EXPECT_EQ(v.y, 42);
}

TEST(Int3Test, LexicographicOrdering) {
  EXPECT_LT((Int3{0, 9, 9}), (Int3{1, 0, 0}));
  EXPECT_LT((Int3{1, 0, 9}), (Int3{1, 1, 0}));
  EXPECT_LT((Int3{1, 1, 0}), (Int3{1, 1, 1}));
  EXPECT_EQ((Int3{2, 2, 2}), (Int3{2, 2, 2}));
}

TEST(Int3Test, MinMaxAreComponentwise) {
  const Int3 a{1, 5, -2}, b{3, 2, -7};
  EXPECT_EQ(Int3::min(a, b), (Int3{1, 2, -7}));
  EXPECT_EQ(Int3::max(a, b), (Int3{3, 5, -2}));
}

TEST(Int3Test, VolumeAndChebyshev) {
  EXPECT_EQ((Int3{2, 3, 4}).volume(), 24);
  EXPECT_EQ((Int3{-5, 2, 3}).chebyshev(), 5);
  EXPECT_EQ((Int3{0, 0, 0}).chebyshev(), 0);
  EXPECT_EQ((Int3{1, -1, 1}).chebyshev(), 1);
}

TEST(FloorModTest, AlwaysNonNegative) {
  EXPECT_EQ(floor_mod(5, 3), 2);
  EXPECT_EQ(floor_mod(-1, 3), 2);
  EXPECT_EQ(floor_mod(-3, 3), 0);
  EXPECT_EQ(floor_mod(-4, 3), 2);
  EXPECT_EQ(floor_mod(0, 7), 0);
}

TEST(FloorDivTest, PairsWithFloorMod) {
  for (int a = -20; a <= 20; ++a) {
    for (int m : {1, 2, 3, 7}) {
      EXPECT_EQ(floor_div(a, m) * m + floor_mod(a, m), a)
          << "a=" << a << " m=" << m;
      EXPECT_LE(floor_div(a, m) * m, a);
    }
  }
}

TEST(FloorModTest, ExtremeOperandsStayDefined) {
  // Pins the widened arithmetic: INT_MIN % -1 / INT_MIN / -1 overflow
  // plain int even though floor_mod's result is representable.  Run
  // under UBSan this is the regression guard.
  EXPECT_EQ(floor_mod(INT_MIN, -1), 0);
  EXPECT_EQ(floor_mod(INT_MIN, 3), floor_mod(INT_MIN % 3 + 3, 3));
  EXPECT_EQ(floor_mod(INT_MAX, 7), INT_MAX % 7);
  EXPECT_EQ(floor_div(INT_MIN, 1), INT_MIN);
  EXPECT_EQ(floor_div(INT_MAX, 1), INT_MAX);
  EXPECT_EQ(floor_div(INT_MIN, INT_MAX) * static_cast<long long>(INT_MAX) +
                floor_mod(INT_MIN, INT_MAX),
            INT_MIN);
}

TEST(WrapTest, WrapsIntoRange) {
  const Int3 dims{4, 5, 6};
  EXPECT_EQ(wrap({4, 5, 6}, dims), (Int3{0, 0, 0}));
  EXPECT_EQ(wrap({-1, -1, -1}, dims), (Int3{3, 4, 5}));
  EXPECT_EQ(wrap({9, 11, 13}, dims), (Int3{1, 1, 1}));
  EXPECT_EQ(wrap({2, 3, 4}, dims), (Int3{2, 3, 4}));
}

TEST(Int3HashTest, ExtremeComponentsPackWithoutOverflow) {
  // The 21-bit packing must stay in unsigned arithmetic for any int
  // component, including the sign-extension-hostile extremes.
  std::hash<Int3> h;
  const std::size_t a = h({INT_MIN, INT_MAX, -1});
  const std::size_t b = h({INT_MAX, INT_MIN, 1});
  EXPECT_NE(a, b);  // the mix must still see different inputs
  EXPECT_EQ(a, h({INT_MIN, INT_MAX, -1}));  // and stay deterministic
}

TEST(Int3HashTest, DistinctValuesRarelyCollide) {
  std::set<std::size_t> hashes;
  std::hash<Int3> h;
  int total = 0;
  for (int x = -5; x <= 5; ++x)
    for (int y = -5; y <= 5; ++y)
      for (int z = -5; z <= 5; ++z) {
        hashes.insert(h({x, y, z}));
        ++total;
      }
  EXPECT_EQ(static_cast<int>(hashes.size()), total);
}

}  // namespace
}  // namespace scmd
