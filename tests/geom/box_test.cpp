#include "geom/box.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(BoxTest, RejectsNonPositiveLengths) {
  EXPECT_THROW(Box({0.0, 1.0, 1.0}), Error);
  EXPECT_THROW(Box({1.0, -2.0, 1.0}), Error);
}

TEST(BoxTest, VolumeMatches) {
  const Box b({2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(b.volume(), 24.0);
  EXPECT_DOUBLE_EQ(Box::cubic(3.0).volume(), 27.0);
}

TEST(BoxTest, WrapIntoPrimaryImage) {
  const Box b = Box::cubic(10.0);
  const Vec3 w = b.wrap({12.0, -3.0, 5.0});
  EXPECT_NEAR(w.x, 2.0, 1e-12);
  EXPECT_NEAR(w.y, 7.0, 1e-12);
  EXPECT_NEAR(w.z, 5.0, 1e-12);
}

TEST(BoxTest, WrapIsIdempotent) {
  const Box b({3.0, 5.0, 7.0});
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Vec3 r{rng.uniform(-50, 50), rng.uniform(-50, 50),
                 rng.uniform(-50, 50)};
    const Vec3 w = b.wrap(r);
    EXPECT_GE(w.x, 0.0);
    EXPECT_LT(w.x, 3.0);
    EXPECT_GE(w.y, 0.0);
    EXPECT_LT(w.y, 5.0);
    EXPECT_GE(w.z, 0.0);
    EXPECT_LT(w.z, 7.0);
    const Vec3 ww = b.wrap(w);
    EXPECT_NEAR(ww.x, w.x, 1e-12);
    EXPECT_NEAR(ww.y, w.y, 1e-12);
    EXPECT_NEAR(ww.z, w.z, 1e-12);
  }
}

TEST(BoxTest, WrapHandlesTinyNegative) {
  const Box b = Box::cubic(1.0);
  const Vec3 w = b.wrap({-1e-18, 0.5, 0.5});
  EXPECT_GE(w.x, 0.0);
  EXPECT_LT(w.x, 1.0);
}

TEST(BoxTest, MinImageShortestDisplacement) {
  const Box b = Box::cubic(10.0);
  // Points near opposite faces are close through the boundary.
  const Vec3 d = b.min_image({9.5, 0, 0}, {0.5, 0, 0});
  EXPECT_NEAR(d.x, -1.0, 1e-12);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
}

TEST(BoxTest, MinImageIsAntisymmetric) {
  const Box b({4.0, 6.0, 8.0});
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Vec3 a{rng.uniform(0, 4), rng.uniform(0, 6), rng.uniform(0, 8)};
    const Vec3 c{rng.uniform(0, 4), rng.uniform(0, 6), rng.uniform(0, 8)};
    const Vec3 d1 = b.min_image(a, c);
    const Vec3 d2 = b.min_image(c, a);
    EXPECT_NEAR(d1.x, -d2.x, 1e-12);
    EXPECT_NEAR(d1.y, -d2.y, 1e-12);
    EXPECT_NEAR(d1.z, -d2.z, 1e-12);
  }
}

TEST(BoxTest, MinImageWithinHalfBox) {
  const Box b = Box::cubic(5.0);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Vec3 a{rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(0, 5)};
    const Vec3 c{rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(0, 5)};
    const Vec3 d = b.min_image(a, c);
    EXPECT_LE(std::abs(d.x), 2.5 + 1e-12);
    EXPECT_LE(std::abs(d.y), 2.5 + 1e-12);
    EXPECT_LE(std::abs(d.z), 2.5 + 1e-12);
  }
}

TEST(BoxTest, MinImageOfFarImagesStaysWithinHalfBox) {
  // Unwrapped trajectories can drift thousands of box lengths from the
  // primary image; the reduction must stay finite and exact in that
  // regime (all the arithmetic is double — no float-cast shortcuts).
  const Box b = Box::cubic(5.0);
  const Vec3 far{1.0 + 5.0 * 1e6, 2.0 - 5.0 * 2e6, 3.0 + 5.0 * 3e6};
  const Vec3 near{1.5, 1.5, 2.0};
  const Vec3 d = b.min_image(far, near);
  EXPECT_NEAR(d.x, -0.5, 1e-6);
  EXPECT_NEAR(d.y, 0.5, 1e-6);
  EXPECT_NEAR(d.z, 1.0, 1e-6);
}

TEST(BoxTest, Dist2MatchesMinImage) {
  const Box b = Box::cubic(10.0);
  EXPECT_NEAR(b.dist2({9.5, 0, 0}, {0.5, 0, 0}), 1.0, 1e-12);
}

}  // namespace
}  // namespace scmd
