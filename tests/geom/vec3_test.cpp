#include "geom/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scmd {
namespace {

TEST(Vec3Test, ArithmeticIsComponentwise) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(a - b, (Vec3{-3, -3, -3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3Test, CompoundOps) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= {1, 1, 1};
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3, 6, 9}));
}

TEST(Vec3Test, DotAndNorm) {
  const Vec3 a{1, 2, 2};
  EXPECT_DOUBLE_EQ(a.dot(a), 9.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 9.0);
  EXPECT_DOUBLE_EQ(a.norm(), 3.0);
  EXPECT_DOUBLE_EQ((Vec3{1, 0, 0}).dot({0, 1, 0}), 0.0);
}

TEST(Vec3Test, CrossProductRightHanded) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(y.cross(x), -z);
}

TEST(Vec3Test, CrossIsPerpendicular) {
  const Vec3 a{1.5, -2.0, 0.7}, b{0.3, 4.0, -1.1};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3Test, IndexAccess) {
  Vec3 v{1, 2, 3};
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v[0] = 9.0;
  EXPECT_DOUBLE_EQ(v.x, 9.0);
}

}  // namespace
}  // namespace scmd
