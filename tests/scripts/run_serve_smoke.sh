#!/usr/bin/env bash
# MD-as-a-service smoke (docs/SERVICE.md acceptance): an 8-rank TCP
# warm pool serves two concurrent jobs to completion plus one cancelled
# mid-run — without restarting — then a served job's final checkpoint is
# compared bit-for-bit against the scmd_run endpoint for the same
# config, the scmd_top job table renders, and the daemon's serve.*
# metrics pass validate_obs.
#
#   tests/scripts/run_serve_smoke.sh <scmd_serve> <scmd_client> \
#       <scmd_run> <workdir>
#
# Used by ctest (apps/CMakeLists.txt) and the CI serve job — one script
# so the gate can't drift between the two.
set -eu

if [ $# -ne 4 ]; then
    echo "usage: $0 <scmd_serve> <scmd_client> <scmd_run> <workdir>" >&2
    exit 2
fi

SERVE=$1
CLIENT=$2
RUN=$3
WORK=$4
ROOT=$(cd "$(dirname "$0")/../.." && pwd)
LAUNCH=$ROOT/tools/launch_serve.sh
TOP=$ROOT/tools/scmd_top.py
VALIDATE=$ROOT/tools/validate_obs.py
COMPARE=$ROOT/tools/compare_checkpoints.py

NRANKS=8  # 1 daemon + 7 workers: two 2-rank jobs + a cancelled 2-rank one

rm -rf "$WORK"
mkdir -p "$WORK"

# A config that stays numerically stable for the long cancelled job.
cat > "$WORK/job.conf" <<'EOF'
field = lj
atoms = 256
steps = 40
ranks = 2
seed = 11
dt_fs = 0.1
metrics_every = 10
EOF
sed 's/^steps = .*/steps = 2000000/; s/^metrics_every = .*/metrics_every = 500/' \
    "$WORK/job.conf" > "$WORK/long.conf"

echo "serve_smoke: booting the $NRANKS-rank pool"
SCMD_SERVE_LOG_DIR="$WORK/logs" \
    "$LAUNCH" "$SERVE" "$NRANKS" \
    --port=0 --status-port=0 --dir="$WORK/jobs" \
    --metrics-out="$WORK/serve_metrics.jsonl" \
    > "$WORK/launch.log" 2>&1 &
LAUNCH_PID=$!

for _ in $(seq 1 300); do
    [ -s "$WORK/logs/client_port" ] && break
    kill -0 "$LAUNCH_PID" 2>/dev/null || {
        echo "serve_smoke: pool failed to boot:" >&2
        cat "$WORK/launch.log" >&2; exit 1; }
    sleep 0.1
done
PORT=$(cat "$WORK/logs/client_port")
STATUS_PORT=$(cat "$WORK/logs/status_port")
echo "serve_smoke: client port $PORT, status port $STATUS_PORT"

# One long job to cancel plus two that must complete concurrently, all
# submitted before any finishes — the pool space-shares 6 of 7 workers.
LONG_ID=$("$CLIENT" --port="$PORT" submit "$WORK/long.conf" \
    | sed 's/[^0-9]*//g')
A_ID=$("$CLIENT" --port="$PORT" submit "$WORK/job.conf" | sed 's/[^0-9]*//g')
B_ID=$("$CLIENT" --port="$PORT" submit "$WORK/job.conf" | sed 's/[^0-9]*//g')
echo "serve_smoke: jobs long=$LONG_ID a=$A_ID b=$B_ID"

echo "serve_smoke: job table while running"
python3 "$TOP" --port "$STATUS_PORT" --jobs --once | tee "$WORK/jobs.txt"
grep -q "running" "$WORK/jobs.txt" || {
    echo "serve_smoke: no running job in the table" >&2; exit 1; }

"$CLIENT" --port="$PORT" cancel "$LONG_ID"

# A follow-up job on the freed ranks proves the pool survived the
# cancel; --wait exits 0 only for a job that reaches done.
"$CLIENT" --port="$PORT" submit "$WORK/job.conf" --wait > /dev/null || {
    echo "serve_smoke: follow-up job after cancel failed" >&2; exit 1; }
for ID in "$A_ID" "$B_ID"; do
    while :; do
        OUT=$("$CLIENT" --port="$PORT" poll "$ID")
        case $OUT in
            *done*) break ;;
            *failed*|*cancelled*)
                echo "serve_smoke: job $ID ended badly: $OUT" >&2; exit 1 ;;
        esac
        sleep 0.2
    done
done
while :; do
    OUT=$("$CLIENT" --port="$PORT" poll "$LONG_ID")
    case $OUT in
        *cancelled*) break ;;
        *done*|*failed*)
            echo "serve_smoke: long job not cancelled: $OUT" >&2; exit 1 ;;
    esac
    sleep 0.2
done
echo "serve_smoke: concurrent jobs done, long job cancelled"

echo "serve_smoke: daemon-vs-scmd_run checkpoint parity"
"$CLIENT" --port="$PORT" submit "$WORK/job.conf" --stream \
    --checkpoint-out="$WORK/served.ckpt" > /dev/null
"$RUN" "$WORK/job.conf" --checkpoint-out="$WORK/direct.ckpt" > /dev/null
python3 "$COMPARE" "$WORK/direct.ckpt" "$WORK/served.ckpt" \
    --pos-tol=0 --vel-tol=0

"$CLIENT" --port="$PORT" shutdown
wait "$LAUNCH_PID" || {
    echo "serve_smoke: pool exited non-zero:" >&2
    cat "$WORK/launch.log" >&2; exit 1; }

echo "serve_smoke: validating serve.* metrics"
python3 "$VALIDATE" --metrics "$WORK/serve_metrics.jsonl" --expect-serve

echo "serve_smoke: OK"
