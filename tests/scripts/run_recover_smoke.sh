#!/usr/bin/env bash
# Kill-and-recover smoke: 4-rank TCP run, rank 2 fault-killed mid-run,
# respawned and recovered from the last checkpoint; final state must
# match an unkilled reference run atom-for-atom.
#
#   tests/scripts/run_recover_smoke.sh <scmd_run> <config> <workdir>
#
# Used by ctest (apps/CMakeLists.txt) and the CI kill-and-recover job —
# one script so the gate can't drift between the two.
#
# Needs tools/launch_tcp.sh and tools/compare_checkpoints.py next to
# this repo checkout (located relative to this script).
set -eu

if [ $# -ne 3 ]; then
    echo "usage: $0 <scmd_run-binary> <config> <workdir>" >&2
    exit 2
fi

BIN=$1
CONFIG=$2
WORK=$3
ROOT=$(cd "$(dirname "$0")/../.." && pwd)
LAUNCH=$ROOT/tools/launch_tcp.sh
COMPARE=$ROOT/tools/compare_checkpoints.py

NRANKS=4
STEPS=20
KILL_AT=13         # between the step-10 and step-15 checkpoints
CKPT_EVERY=5

rm -rf "$WORK"
mkdir -p "$WORK/logs_killed" "$WORK/logs_ref"

echo "recover_smoke: killed run (rank 2 dies after step $KILL_AT)"
SCMD_FAULT_KILL_AT_STEP=$KILL_AT \
SCMD_FAULT_KILL_RANK=2 \
SCMD_FAULT_TOKEN="$WORK/fault_token" \
SCMD_TCP_LOG_DIR="$WORK/logs_killed" \
SCMD_TCP_RANK0_ARGS="--checkpoint-out=$WORK/recovered.ckpt --wal=$WORK/run.wal" \
    "$LAUNCH" --respawn "$BIN" "$NRANKS" "$CONFIG" \
    --steps=$STEPS --checkpoint-every=$CKPT_EVERY \
    --checkpoint-dir="$WORK/ckpt" --restore=auto --max-recoveries=2

# The fault must actually have fired and been recovered from: the token
# file exists once the kill ran, and rank 2's log shows the respawn.
[ -e "$WORK/fault_token" ] || {
    echo "recover_smoke: fault never fired (no token file)" >&2; exit 1; }
grep -q "respawn" "$WORK/logs_killed/rank2.log" || {
    echo "recover_smoke: rank 2 was never respawned" >&2; exit 1; }
grep -q "restored from step" "$WORK/logs_killed/rank0.log" || {
    echo "recover_smoke: rank 0 never reported a restore" >&2; exit 1; }

echo "recover_smoke: unkilled reference run"
SCMD_TCP_LOG_DIR="$WORK/logs_ref" \
SCMD_TCP_RANK0_ARGS="--checkpoint-out=$WORK/reference.ckpt" \
    "$LAUNCH" "$BIN" "$NRANKS" "$CONFIG" --steps=$STEPS

echo "recover_smoke: comparing recovered vs reference endpoint"
python3 "$COMPARE" "$WORK/reference.ckpt" "$WORK/recovered.ckpt" \
    --pos-tol=1e-7 --vel-tol=1e-7 --force-tol=1e-6

echo "recover_smoke: OK"
