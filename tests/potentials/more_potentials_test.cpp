// BKS silica and Morse: finite-difference force checks, physical sanity,
// and engine-level runs.

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/bks.hpp"
#include "potentials/morse.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

constexpr double kH = 1e-6;

void check_pair_forces(const ForceField& f, int ti, int tj, double r,
                       double tol) {
  const Vec3 ri{0, 0, 0};
  const Vec3 rj{r / std::sqrt(3.0), r / std::sqrt(3.0), r / std::sqrt(3.0)};
  Vec3 fi, fj;
  f.eval_pair(ti, tj, ri, rj, fi, fj);
  for (int axis = 0; axis < 3; ++axis) {
    Vec3 rp = rj, rm = rj;
    rp[axis] += kH;
    rm[axis] -= kH;
    Vec3 dump1, dump2;
    const double ep = f.eval_pair(ti, tj, ri, rp, dump1, dump2);
    const double em = f.eval_pair(ti, tj, ri, rm, dump1, dump2);
    EXPECT_NEAR(fj[axis], -(ep - em) / (2.0 * kH), tol) << "axis " << axis;
  }
  EXPECT_NEAR((fi + fj).norm(), 0.0, 1e-10);
}

TEST(BksTest, ForcesMatchFiniteDifferences) {
  const BksSiO2 bks;
  Rng rng(190);
  for (int trial = 0; trial < 10; ++trial) {
    check_pair_forces(bks, 0, 1, rng.uniform(1.4, 5.2), 5e-3);
    check_pair_forces(bks, 1, 1, rng.uniform(2.2, 5.2), 5e-3);
    check_pair_forces(bks, 0, 0, rng.uniform(2.8, 5.2), 5e-3);
  }
}

TEST(BksTest, SiOBondMinimumNearPhysical) {
  // The isolated Si-O dimer well of BKS sits near 1.4 Å (the bulk 1.61 Å
  // bond emerges only with O-O repulsion around the tetrahedron).
  const BksSiO2 bks;
  double best_r = 0.0, best_v = 1e30;
  Vec3 f1, f2;
  for (double r = 1.2; r < 2.4; r += 0.005) {
    const double v = bks.eval_pair(0, 1, {0, 0, 0}, {r, 0, 0}, f1, f2);
    if (v < best_v) {
      best_v = v;
      best_r = r;
    }
  }
  EXPECT_NEAR(best_r, 1.4, 0.2);
  EXPECT_LT(best_v, -10.0);  // deep ionic well
}

TEST(BksTest, TruncationContinuousAtCutoff) {
  const BksSiO2 bks;
  Vec3 f1, f2;
  const double e =
      bks.eval_pair(0, 1, {0, 0, 0}, {5.5 - 1e-10, 0, 0}, f1, f2);
  EXPECT_NEAR(e, 0.0, 1e-6);
}

TEST(BksTest, PairOnlySilicaRunsStably) {
  Rng rng(191);
  ParticleSystem sys = make_silica(648, 2.2, 300.0, rng);
  const BksSiO2 bks;
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  SerialEngine engine(sys, bks, make_strategy("SC", bks), cfg);
  // No triplet grid is requested by a pair-only field.
  EXPECT_EQ(engine.counters().tuples[3].accepted, 0u);
  const BerendsenThermostat thermo(300.0, 2.0 * units::kFemtosecond);
  for (int s = 0; s < 60; ++s) engine.step(thermo);
  EXPECT_LT(sys.temperature(), 3000.0);
  EXPECT_TRUE(std::isfinite(engine.potential_energy()));
}

TEST(MorseTest, ForcesMatchFiniteDifferences) {
  const Morse morse;
  Rng rng(192);
  for (int trial = 0; trial < 10; ++trial) {
    check_pair_forces(morse, 0, 0, rng.uniform(2.0, 5.5), 1e-4);
  }
}

TEST(MorseTest, MinimumAtR0WithDepthDe) {
  const Morse morse;
  Vec3 f1, f2;
  const double e = morse.eval_pair(0, 0, {0, 0, 0},
                                   {morse.params().r0, 0, 0}, f1, f2);
  // Shifted by the (small) cutoff offset.
  EXPECT_NEAR(e, -morse.params().De, 0.01);
  EXPECT_NEAR(f1.norm(), 0.0, 1e-9);
}

TEST(MorseTest, NveConservesEnergy) {
  Rng rng(193);
  const Morse morse;
  ParticleSystem sys = make_gas(morse, 400, 5.0, 300.0, rng);
  SerialEngineConfig cfg;
  cfg.dt = 2.0 * units::kFemtosecond;
  SerialEngine engine(sys, morse, make_strategy("SC", morse), cfg);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 80; ++s) engine.step();
  EXPECT_NEAR(engine.total_energy(), e0, std::abs(e0) * 0.01 + 0.05);
}

TEST(MorseTest, RejectsBadParameters) {
  MorseParams p;
  p.rcut = 1.0;  // below r0
  EXPECT_THROW(Morse{p}, Error);
}

}  // namespace
}  // namespace scmd

namespace scmd {
namespace {

TEST(VashishtaOverrideTest, CustomCutoffsAreHonored) {
  const VashishtaSiO2 narrow(4.5, 2.0);
  EXPECT_DOUBLE_EQ(narrow.rcut(2), 4.5);
  EXPECT_DOUBLE_EQ(narrow.rcut(3), 2.0);
  // Shifted-force truncation follows the override: zero at the new rc.
  Vec3 f1, f2;
  const double e = narrow.eval_pair(kSilicon, kOxygen, {0, 0, 0},
                                    {4.5 - 1e-10, 0, 0}, f1, f2);
  EXPECT_NEAR(e, 0.0, 1e-6);
  EXPECT_THROW(VashishtaSiO2(2.0, 3.0), Error);  // rcut3 > rcut2
}

TEST(VashishtaOverrideTest, TripletChannelFollowsRcut3) {
  const VashishtaSiO2 narrow(4.5, 2.0);
  Vec3 f[3];
  // Legs at 2.1 Å: outside the overridden triplet range.
  EXPECT_EQ(narrow.eval_triplet(kOxygen, kSilicon, kOxygen, {2.1, 0, 0},
                                {0, 0, 0}, {0, 2.1, 0}, f[0], f[1], f[2]),
            0.0);
  // Inside: non-zero.
  EXPECT_NE(narrow.eval_triplet(kOxygen, kSilicon, kOxygen, {1.6, 0, 0},
                                {0, 0, 0}, {0, 1.6, 0}, f[0], f[1], f[2]),
            0.0);
}

}  // namespace
}  // namespace scmd
