// Force correctness for every potential: analytic forces must equal the
// negative finite-difference gradient of the energy, Newton's third law
// must hold, and cutoffs must truncate smoothly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "potentials/dihedral.hpp"
#include "potentials/lj.hpp"
#include "potentials/stillinger_weber.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

constexpr double kH = 1e-6;

/// Energy of a pair/triplet/quad evaluation without forces.
double energy_of(const ForceField& f, int n, const std::vector<int>& types,
                 const std::vector<Vec3>& r) {
  std::vector<Vec3> dummy(r.size());
  if (n == 2)
    return f.eval_pair(types[0], types[1], r[0], r[1], dummy[0], dummy[1]);
  if (n == 3)
    return f.eval_triplet(types[0], types[1], types[2], r[0], r[1], r[2],
                          dummy[0], dummy[1], dummy[2]);
  return f.eval_quad(types[0], types[1], types[2], types[3], r[0], r[1],
                     r[2], r[3], dummy[0], dummy[1], dummy[2], dummy[3]);
}

/// Compare analytic forces with -dE/dr by central differences.
void check_forces(const ForceField& f, int n, const std::vector<int>& types,
                  const std::vector<Vec3>& r, double tol) {
  std::vector<Vec3> force(r.size());
  if (n == 2) {
    f.eval_pair(types[0], types[1], r[0], r[1], force[0], force[1]);
  } else if (n == 3) {
    f.eval_triplet(types[0], types[1], types[2], r[0], r[1], r[2], force[0],
                   force[1], force[2]);
  } else {
    f.eval_quad(types[0], types[1], types[2], types[3], r[0], r[1], r[2],
                r[3], force[0], force[1], force[2], force[3]);
  }

  for (std::size_t atom = 0; atom < r.size(); ++atom) {
    for (int axis = 0; axis < 3; ++axis) {
      std::vector<Vec3> rp = r, rm = r;
      rp[atom][axis] += kH;
      rm[atom][axis] -= kH;
      const double fd =
          -(energy_of(f, n, types, rp) - energy_of(f, n, types, rm)) /
          (2.0 * kH);
      EXPECT_NEAR(force[atom][axis], fd, tol)
          << "atom " << atom << " axis " << axis;
    }
  }

  // Newton's third law: zero net force.
  Vec3 net;
  for (const Vec3& fa : force) net += fa;
  EXPECT_NEAR(net.x, 0.0, 1e-10);
  EXPECT_NEAR(net.y, 0.0, 1e-10);
  EXPECT_NEAR(net.z, 0.0, 1e-10);
}

// ---------------- Lennard-Jones ----------------

TEST(LennardJonesTest, MinimumAtTwoToTheOneSixth) {
  const LennardJones lj;
  const double rmin = std::pow(2.0, 1.0 / 6.0);
  std::vector<Vec3> force(2);
  const double e_min =
      lj.eval_pair(0, 0, {0, 0, 0}, {rmin, 0, 0}, force[0], force[1]);
  EXPECT_NEAR(force[0].x, 0.0, 1e-10);
  // Shifted by V(rcut): slightly above -eps.
  EXPECT_LT(e_min, -0.98);
}

TEST(LennardJonesTest, ForceMatchesFiniteDifference) {
  const LennardJones lj;
  Rng rng(40);
  for (int trial = 0; trial < 20; ++trial) {
    const double r = rng.uniform(0.85, 2.4);
    const Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 rj = dir * (r / dir.norm());
    check_forces(lj, 2, {0, 0}, {{0, 0, 0}, rj}, 1e-4);
  }
}

TEST(LennardJonesTest, ZeroBeyondCutoff) {
  const LennardJones lj;
  std::vector<Vec3> force(2);
  EXPECT_EQ(lj.eval_pair(0, 0, {0, 0, 0}, {2.6, 0, 0}, force[0], force[1]),
            0.0);
  EXPECT_EQ(force[0], Vec3{});
}

TEST(LennardJonesTest, EnergyContinuousAtCutoff) {
  const LennardJones lj;
  std::vector<Vec3> f(2);
  const double e = lj.eval_pair(0, 0, {0, 0, 0}, {2.5 - 1e-9, 0, 0}, f[0],
                                f[1]);
  EXPECT_NEAR(e, 0.0, 1e-6);
}

TEST(LennardJonesTest, RepulsiveAtShortRange) {
  const LennardJones lj;
  std::vector<Vec3> f(2);
  lj.eval_pair(0, 0, {0, 0, 0}, {0.9, 0, 0}, f[0], f[1]);
  EXPECT_LT(f[0].x, 0.0);  // pushes atom i away (toward -x)
  EXPECT_GT(f[1].x, 0.0);
}

// ---------------- Stillinger-Weber ----------------

TEST(StillingerWeberTest, PairForceMatchesFiniteDifference) {
  const StillingerWeber sw;
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    const double r = rng.uniform(1.9, 3.6);
    const Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 rj = dir * (r / dir.norm());
    check_forces(sw, 2, {0, 0}, {{0, 0, 0}, rj}, 1e-3);
  }
}

TEST(StillingerWeberTest, TripletForceMatchesFiniteDifference) {
  const StillingerWeber sw;
  Rng rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    // Chain (i, j, k): center j at origin, both legs inside the cutoff.
    const Vec3 ri{rng.uniform(2.0, 3.4), rng.uniform(-0.5, 0.5),
                  rng.uniform(-0.5, 0.5)};
    const Vec3 rk{rng.uniform(-0.5, 0.5), rng.uniform(2.0, 3.4),
                  rng.uniform(-0.5, 0.5)};
    check_forces(sw, 3, {0, 0, 0}, {ri, {0, 0, 0}, rk}, 1e-3);
  }
}

TEST(StillingerWeberTest, TripletZeroAtTetrahedralAngle) {
  const StillingerWeber sw;
  // cos(theta) = -1/3: the ideal angle has zero bond-bending energy.
  const double c = -1.0 / 3.0;
  const Vec3 ri{2.35, 0, 0};
  const Vec3 rk{2.35 * c, 2.35 * std::sqrt(1 - c * c), 0};
  std::vector<Vec3> f(3);
  const double e =
      sw.eval_triplet(0, 0, 0, ri, {0, 0, 0}, rk, f[0], f[1], f[2]);
  EXPECT_NEAR(e, 0.0, 1e-12);
}

TEST(StillingerWeberTest, DiamondLatticeIsNearEquilibrium) {
  // In the diamond structure each atom sits at the SW pair+triplet
  // minimum; the net force on a bulk atom must vanish by symmetry.
  const StillingerWeber sw;
  const double a = 5.431;  // Si lattice constant, Å
  // Center atom at (a/4)(1,1,1) with its 4 tetrahedral neighbors.
  const Vec3 c = Vec3{0.25, 0.25, 0.25} * a;
  const std::vector<Vec3> nbrs{{0, 0, 0},
                               Vec3{0.5, 0.5, 0} * a,
                               Vec3{0.5, 0, 0.5} * a,
                               Vec3{0, 0.5, 0.5} * a};
  Vec3 fc;
  std::vector<Vec3> dump(5);
  // Pair forces on the center.
  for (const Vec3& nb : nbrs) sw.eval_pair(0, 0, c, nb, fc, dump[0]);
  // Triplet terms centered on the center atom.
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    for (std::size_t j = i + 1; j < nbrs.size(); ++j)
      sw.eval_triplet(0, 0, 0, nbrs[i], c, nbrs[j], dump[1], fc, dump[2]);
  EXPECT_NEAR(fc.norm(), 0.0, 1e-9);
}

// ---------------- Vashishta SiO2 ----------------

TEST(VashishtaTest, PairForceMatchesFiniteDifference) {
  const VashishtaSiO2 v;
  Rng rng(43);
  for (const auto& [ti, tj] : std::vector<std::pair<int, int>>{
           {kSilicon, kSilicon}, {kSilicon, kOxygen}, {kOxygen, kOxygen}}) {
    for (int trial = 0; trial < 8; ++trial) {
      const double r = rng.uniform(1.4, 5.2);
      const Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
      const Vec3 rj = dir * (r / dir.norm());
      check_forces(v, 2, {ti, tj}, {{0, 0, 0}, rj}, 2e-3);
    }
  }
}

TEST(VashishtaTest, TripletForceMatchesFiniteDifference) {
  const VashishtaSiO2 v;
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    // O-Si-O chain with Si center.
    const Vec3 ri{rng.uniform(1.4, 2.2), rng.uniform(-0.3, 0.3),
                  rng.uniform(-0.3, 0.3)};
    const Vec3 rk{rng.uniform(-0.3, 0.3), rng.uniform(1.4, 2.2),
                  rng.uniform(-0.3, 0.3)};
    check_forces(v, 3, {kOxygen, kSilicon, kOxygen}, {ri, {0, 0, 0}, rk},
                 2e-3);
  }
}

TEST(VashishtaTest, MismatchedTripletChannelsAreZero) {
  const VashishtaSiO2 v;
  std::vector<Vec3> f(3);
  // Si-Si-Si and O-O-O angles carry no strength in the 1990 set.
  EXPECT_EQ(v.eval_triplet(kSilicon, kSilicon, kSilicon, {1.5, 0, 0},
                           {0, 0, 0}, {0, 1.5, 0}, f[0], f[1], f[2]),
            0.0);
  EXPECT_EQ(v.eval_triplet(kOxygen, kOxygen, kOxygen, {1.5, 0, 0}, {0, 0, 0},
                           {0, 1.5, 0}, f[0], f[1], f[2]),
            0.0);
  // O-center with Si ends is active (Si-O-Si bridge).
  EXPECT_NE(v.eval_triplet(kSilicon, kOxygen, kSilicon, {1.6, 0, 0},
                           {0, 0, 0}, {0, 1.6, 0}, f[0], f[1], f[2]),
            0.0);
}

TEST(VashishtaTest, PairEnergyAndForceVanishAtCutoff) {
  const VashishtaSiO2 v;
  std::vector<Vec3> f(2);
  const double e = v.eval_pair(kSilicon, kOxygen, {0, 0, 0},
                               {5.5 - 1e-10, 0, 0}, f[0], f[1]);
  EXPECT_NEAR(e, 0.0, 1e-7);
  EXPECT_NEAR(f[0].x, 0.0, 1e-6);
}

TEST(VashishtaTest, SiOBondIsAttractiveAtRange) {
  const VashishtaSiO2 v;
  std::vector<Vec3> f(2);
  // At 2.2 Å (beyond the ~1.6 Å bond minimum) Si-O should attract.
  v.eval_pair(kSilicon, kOxygen, {0, 0, 0}, {2.2, 0, 0}, f[0], f[1]);
  EXPECT_GT(f[0].x, 0.0);  // Si pulled toward O (+x)
}

TEST(VashishtaTest, OOIsRepulsiveAtMidRange) {
  const VashishtaSiO2 v;
  std::vector<Vec3> f(2);
  v.eval_pair(kOxygen, kOxygen, {0, 0, 0}, {2.3, 0, 0}, f[0], f[1]);
  EXPECT_LT(f[0].x, 0.0);  // pushed apart
}

TEST(VashishtaTest, CutoffsMatchPaperRatio) {
  const VashishtaSiO2 v;
  EXPECT_NEAR(v.rcut(3) / v.rcut(2), 0.47, 0.01);
}

// ---------------- Chain dihedral (n = 4) ----------------

TEST(ChainDihedralTest, PairForceMatchesFiniteDifference) {
  const ChainDihedral cd;
  check_forces(cd, 2, {0, 0}, {{0, 0, 0}, {0.5, 0.3, 0.1}}, 1e-5);
}

TEST(ChainDihedralTest, QuadForceMatchesFiniteDifference) {
  const ChainDihedral cd;
  Rng rng(45);
  for (int trial = 0; trial < 20; ++trial) {
    // A non-degenerate chain of four points.
    std::vector<Vec3> r{{0, 0, 0},
                        {0.5, 0.1, 0},
                        {0.8, 0.5, 0.2},
                        {1.0, 0.4, 0.7}};
    for (Vec3& p : r) {
      p += Vec3{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
                rng.uniform(-0.05, 0.05)};
    }
    check_forces(cd, 4, {0, 0, 0, 0}, r, 1e-4);
  }
}

TEST(ChainDihedralTest, CisEnergyExceedsTransEnergy) {
  ChainParams p;
  p.K = 0.05;
  p.rcut4 = 0.8;
  const ChainDihedral cd(p);
  std::vector<Vec3> f(4);
  // U-shaped (cis) chain: cosφ ~ +1 -> near-maximal energy.
  const double e_cis =
      cd.eval_quad(0, 0, 0, 0, {0, 0, 0}, {0.5, 0, 0}, {0.5, 0.5, 0},
                   {0, 0.5, 0}, f[0], f[1], f[2], f[3]);
  // Zigzag (trans) chain: cosφ ~ -1 -> near-zero energy.
  const double e_trans =
      cd.eval_quad(0, 0, 0, 0, {0, 0, 0}, {0.5, 0, 0}, {0.5, 0.5, 0},
                   {1.0, 0.5, 0}, f[0], f[1], f[2], f[3]);
  EXPECT_GT(e_cis, 10.0 * std::max(e_trans, 1e-6));
  EXPECT_LT(e_trans, 0.01 * p.K);
}

TEST(ChainDihedralTest, EnergySwitchesOffSmoothlyAtCutoff) {
  const ChainDihedral cd;
  std::vector<Vec3> f(4);
  // Stretch the last bond toward the cutoff: energy must vanish
  // continuously (no jump as the tuple leaves the chain set).
  const double rc = cd.rcut(4);
  const double e_near =
      cd.eval_quad(0, 0, 0, 0, {0, 0, 0}, {0.4, 0, 0}, {0.4, 0.4, 0},
                   {0.4 + (rc - 1e-4), 0.4, 0.1}, f[0], f[1], f[2], f[3]);
  EXPECT_NEAR(e_near, 0.0, 1e-5);
  const double e_out =
      cd.eval_quad(0, 0, 0, 0, {0, 0, 0}, {0.4, 0, 0}, {0.4, 0.4, 0},
                   {0.4 + rc + 0.01, 0.4, 0.1}, f[0], f[1], f[2], f[3]);
  EXPECT_EQ(e_out, 0.0);
}

TEST(ChainDihedralTest, CollinearChainHasBoundedForces) {
  const ChainDihedral cd;
  std::vector<Vec3> r{{0, 0, 0}, {0.3, 0, 0}, {0.6, 1e-7, 0}, {0.9, 0, 1e-7}};
  check_forces(cd, 4, {0, 0, 0, 0}, r, 1e-3);
}

}  // namespace
}  // namespace scmd
