// Distributed telemetry pipeline end to end (docs/OBSERVABILITY.md):
// clock-offset estimation between endpoints with skewed clocks, the
// 4-rank TCP run whose rank-0 trace is ONE clock-aligned merged
// timeline (one lane per rank, step spans overlapping across lanes),
// live per-step metric reduction, and the status socket protocol.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "md/builders.hpp"
#include "md/units.hpp"
#include "net/clock_sync.hpp"
#include "net/inproc.hpp"
#include "net/status_server.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

double wall_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST(ClockSyncTest, RecoversKnownSkewOverInProc) {
  const int P = 3;
  // Rank r's clock runs ahead by r * 40000 us; the offset maps local
  // time into rank 0's timebase, so the estimate must be ~ -skew.
  constexpr double skew_us = 40000.0;
  Cluster cluster(P);
  std::vector<std::vector<ClockEstimate>> est(static_cast<std::size_t>(P));
  std::vector<std::thread> threads;
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      est[static_cast<std::size_t>(r)] = estimate_clock_offsets(
          cluster.transport(r), [r] { return wall_us() + r * skew_us; });
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(est[0].size(), static_cast<std::size_t>(P));
  EXPECT_TRUE(est[1].empty());  // non-root gets no estimates
  EXPECT_DOUBLE_EQ(est[0][0].offset_us, 0.0);  // root's own clock
  for (int r = 1; r < P; ++r) {
    const ClockEstimate& e = est[0][static_cast<std::size_t>(r)];
    // In-process ping-pong round trips are far tighter than 1 ms.
    EXPECT_NEAR(e.offset_us, -r * skew_us, 1000.0) << r;
    EXPECT_GE(e.uncertainty_us, 0.0);
    EXPECT_LT(e.uncertainty_us, 1000.0);
  }
}

TEST(TelemetryPipelineTest, TcpRunMergesTracesAndReducesMetricsLive) {
  const int P = 4;
  const int steps = 3;
  const auto [rendezvous_fd, rendezvous_port] = bind_listener("127.0.0.1", 0);

  obs::TraceSession merged;
  obs::MetricsRegistry reg;
  std::vector<ParticleSystem> systems;
  for (int r = 0; r < P; ++r) {
    Rng rng(77);
    systems.push_back(make_silica(1500, 2.2, 350.0, rng));
  }
  std::vector<ParallelRunResult> results(static_cast<std::size_t>(P));
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r, rendezvous_fd = rendezvous_fd,
                          rendezvous_port = rendezvous_port] {
      try {
        TcpConfig tcp;
        tcp.rank = r;
        tcp.num_ranks = P;
        tcp.rendezvous_port = rendezvous_port;
        if (r == 0) tcp.rendezvous_fd = rendezvous_fd;
        tcp.recv_timeout_s = 120.0;
        TcpTransport transport(tcp);
        const VashishtaSiO2 field;
        ParallelRunConfig cfg;
        cfg.dt = 1.0 * units::kFemtosecond;
        cfg.num_steps = steps;
        if (r == 0) {  // hooks are honored on rank 0 only
          cfg.trace = &merged;
          cfg.metrics = &reg;
        }
        Comm comm(transport);
        results[static_cast<std::size_t>(r)] = run_parallel_md_rank(
            systems[static_cast<std::size_t>(r)], field, "SC",
            ProcessGrid::factor(P), cfg, comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Live metric reduction left the end-of-run schema in the registry.
  EXPECT_TRUE(reg.has("imbalance.search.ratio"));
  EXPECT_TRUE(reg.has("imbalance.search.max"));
  EXPECT_TRUE(reg.has("comm.transport.bytes_sent"));
  EXPECT_GT(reg.value("comm.transport.messages_sent"), 0.0);
  const auto hists = reg.histogram_names();
  EXPECT_NE(std::find(hists.begin(), hists.end(), "phase_hist.step"),
            hists.end());
  EXPECT_NE(std::find(hists.begin(), hists.end(), "phase_hist.force"),
            hists.end());

  // ONE merged trace: a lane per rank, each with one step span per
  // record, and the k-th step spans mutually overlapping across lanes
  // (lock-step MD; misalignment means the clock mapping is wrong).
  std::map<int, std::vector<obs::TraceEvent>> lanes;
  for (const obs::TraceEvent& e : merged.events()) {
    if (e.name == "step") lanes[e.tid].push_back(e);
  }
  ASSERT_EQ(lanes.size(), static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    ASSERT_TRUE(lanes.count(r)) << r;
    EXPECT_EQ(lanes[r].size(), static_cast<std::size_t>(steps)) << r;
  }
  const double slack_us = 5000.0;  // >> observed loopback offsets
  for (int k = 0; k < steps; ++k) {
    double last_start = 0.0, first_end = 1e300;
    for (int r = 0; r < P; ++r) {
      const obs::TraceEvent& e = lanes[r][static_cast<std::size_t>(k)];
      last_start = std::max(last_start, e.ts_us);
      first_end = std::min(first_end, e.ts_us + e.dur_us);
    }
    EXPECT_LE(last_start, first_end + slack_us) << "step " << k;
  }

  // The physics still agrees across ranks.
  EXPECT_NEAR(results[0].potential_energy, results[3].potential_energy,
              1e-8 * std::abs(results[0].potential_energy));
}

/// Length-prefixed status request over a plain socket (the scmd_top.py
/// protocol, docs/OBSERVABILITY.md).
std::string query_status(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::uint32_t zero = 0;
  EXPECT_EQ(::send(fd, &zero, sizeof(zero), 0),
            static_cast<ssize_t>(sizeof(zero)));
  std::uint32_t len = 0;
  EXPECT_EQ(::recv(fd, &len, sizeof(len), MSG_WAITALL),
            static_cast<ssize_t>(sizeof(len)));
  std::string body(len, '\0');
  EXPECT_EQ(::recv(fd, body.data(), len, MSG_WAITALL),
            static_cast<ssize_t>(len));
  ::close(fd);
  return body;
}

TEST(StatusServerTest, ServesLatestSnapshotToClients) {
  StatusServer server(0);  // ephemeral port
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(query_status(server.port()), "{}");  // initial snapshot
  server.publish("{\"latest_step\":7}");
  EXPECT_EQ(query_status(server.port()), "{\"latest_step\":7}");
  server.publish("{\"latest_step\":8}");
  EXPECT_EQ(query_status(server.port()), "{\"latest_step\":8}");
  server.stop();
  server.stop();  // idempotent
}

}  // namespace
}  // namespace scmd
