// Transport-semantics contract (docs/TRANSPORT.md): every backend must
// provide async sends, blocking tagged receives, per-(src, dst, tag)
// ordering, and collectives — so the same suite runs against the
// in-process cluster and the TCP mesh.  TCP-only failure semantics
// (recv timeout, killed peer) are covered at the bottom.

#include <gtest/gtest.h>

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "support/error.hpp"

namespace scmd {
namespace {

enum class Backend { kInProc, kTcp };

/// Run `fn` once per rank, each on its own thread, over the requested
/// backend; rethrows the first rank exception after all threads join.
/// The TCP cluster runs P processes' worth of endpoints in this process
/// over loopback (the rendezvous listener is pre-bound on an ephemeral
/// port and adopted by rank 0, so concurrent tests cannot collide).
void run_ranks(Backend backend, int P,
               const std::function<void(Transport&)>& fn,
               double recv_timeout_s = 30.0) {
  std::unique_ptr<Cluster> cluster;
  int rendezvous_fd = -1;
  int rendezvous_port = 0;
  if (backend == Backend::kInProc) {
    cluster = std::make_unique<Cluster>(P);
  } else {
    std::tie(rendezvous_fd, rendezvous_port) =
        bind_listener("127.0.0.1", 0);
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      try {
        if (backend == Backend::kInProc) {
          fn(cluster->transport(r));
        } else {
          TcpConfig cfg;
          cfg.rank = r;
          cfg.num_ranks = P;
          cfg.rendezvous_port = rendezvous_port;
          if (r == 0) cfg.rendezvous_fd = rendezvous_fd;
          cfg.recv_timeout_s = recv_timeout_s;
          TcpTransport transport(cfg);
          fn(transport);
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

class TransportSemanticsTest : public ::testing::TestWithParam<Backend> {};

TEST_P(TransportSemanticsTest, PointToPointDelivery) {
  run_ranks(GetParam(), 2, [](Transport& t) {
    if (t.rank() == 0) {
      t.send(1, 7, pack(std::vector<int>{42}));
    } else {
      const auto v = unpack<int>(t.recv(0, 7));
      ASSERT_EQ(v.size(), 1u);
      EXPECT_EQ(v[0], 42);
    }
  });
}

TEST_P(TransportSemanticsTest, OrderPreservedPerChannel) {
  run_ranks(GetParam(), 2, [](Transport& t) {
    if (t.rank() == 0) {
      for (int i = 0; i < 50; ++i) t.send(1, 1, pack(std::vector<int>{i}));
    } else {
      for (int i = 0; i < 50; ++i)
        EXPECT_EQ(unpack<int>(t.recv(0, 1))[0], i);
    }
  });
}

TEST_P(TransportSemanticsTest, TagsSeparateStreams) {
  run_ranks(GetParam(), 2, [](Transport& t) {
    if (t.rank() == 0) {
      // Interleave three tag streams; each must stay ordered on its own
      // even when drained in a different global order.
      for (int i = 0; i < 10; ++i) {
        for (int tag : {1, 2, 3})
          t.send(1, tag, pack(std::vector<int>{tag * 100 + i}));
      }
    } else {
      for (int tag : {3, 1, 2}) {
        for (int i = 0; i < 10; ++i)
          EXPECT_EQ(unpack<int>(t.recv(0, tag))[0], tag * 100 + i);
      }
    }
  });
}

TEST_P(TransportSemanticsTest, AllRanksTalkToAllRanks) {
  run_ranks(GetParam(), 4, [](Transport& t) {
    for (int dst = 0; dst < t.num_ranks(); ++dst) {
      if (dst == t.rank()) continue;
      t.send(dst, 5, pack(std::vector<int>{t.rank() * 10 + dst}));
    }
    for (int src = 0; src < t.num_ranks(); ++src) {
      if (src == t.rank()) continue;
      EXPECT_EQ(unpack<int>(t.recv(src, 5))[0], src * 10 + t.rank());
    }
  });
}

TEST_P(TransportSemanticsTest, LargeAndEmptyPayloads) {
  run_ranks(GetParam(), 2, [](Transport& t) {
    if (t.rank() == 0) {
      std::vector<double> big(1 << 16);
      for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<double>(i);
      t.send(1, 2, pack(big));
      t.send(1, 2, Bytes{});
    } else {
      const auto big = unpack<double>(t.recv(0, 2));
      ASSERT_EQ(big.size(), static_cast<std::size_t>(1 << 16));
      EXPECT_DOUBLE_EQ(big[12345], 12345.0);
      EXPECT_TRUE(t.recv(0, 2).empty());
    }
  });
}

TEST_P(TransportSemanticsTest, Collectives) {
  const int P = 3;
  run_ranks(GetParam(), P, [P](Transport& t) {
    EXPECT_DOUBLE_EQ(t.allreduce_sum(t.rank() + 1.0), P * (P + 1) / 2.0);
    EXPECT_DOUBLE_EQ(t.allreduce_max(static_cast<double>(t.rank())),
                     static_cast<double>(P - 1));
  });
}

TEST_P(TransportSemanticsTest, CollectivesInterleavedWithPointToPoint) {
  // The engine's real pattern: tagged halo traffic in flight while
  // collectives run on their reserved channel, repeatedly.
  const int P = 4;
  run_ranks(GetParam(), P, [P](Transport& t) {
    const int next = (t.rank() + 1) % P;
    const int prev = (t.rank() + P - 1) % P;
    for (int round = 0; round < 20; ++round) {
      t.send(next, 11, pack(std::vector<int>{round}));
      const double s = t.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, static_cast<double>(P));
      EXPECT_EQ(unpack<int>(t.recv(prev, 11))[0], round);
      t.barrier();
    }
  });
}

TEST_P(TransportSemanticsTest, BarrierSeparatesPhases) {
  std::atomic<int> phase1{0};
  run_ranks(GetParam(), 4, [&](Transport& t) {
    phase1.fetch_add(1);
    t.barrier();
    EXPECT_EQ(phase1.load(), 4);
  });
}

TEST_P(TransportSemanticsTest, StatsCountTraffic) {
  run_ranks(GetParam(), 2, [](Transport& t) {
    if (t.rank() == 0) {
      t.send(1, 1, Bytes(100));
      t.send(1, 1, Bytes(28));
      t.barrier();
      const TransportStats s = t.stats();
      EXPECT_GE(s.messages_sent, 2u);
      EXPECT_GE(s.bytes_sent, 128u);
    } else {
      t.recv(0, 1);
      t.recv(0, 1);
      t.barrier();
      const TransportStats s = t.stats();
      EXPECT_GE(s.messages_received, 2u);
      EXPECT_GE(s.bytes_received, 128u);
    }
  });
}

TEST_P(TransportSemanticsTest, MailboxWatermarkSeesBacklog) {
  run_ranks(GetParam(), 2, [](Transport& t) {
    if (t.rank() == 0) {
      for (int i = 0; i < 8; ++i) t.send(1, 1, Bytes(4));
      t.barrier();  // all 8 queued before the receiver drains
    } else {
      t.barrier();
      for (int i = 0; i < 8; ++i) t.recv(0, 1);
      EXPECT_GE(t.stats().max_mailbox_depth, 8u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TransportSemanticsTest,
                         ::testing::Values(Backend::kInProc, Backend::kTcp),
                         [](const auto& param_info) {
                           return param_info.param == Backend::kInProc
                                      ? "InProc"
                                      : "Tcp";
                         });

// --- TCP-only failure semantics -------------------------------------

TEST(TcpFaultTest, RecvTimesOutInsteadOfHanging) {
  std::atomic<bool> timed_out{false};
  run_ranks(
      Backend::kTcp, 2,
      [&](Transport& t) {
        if (t.rank() == 0) {
          // Nobody ever sends on tag 99: the bounded wait must throw.
          try {
            t.recv(1, 99);
          } catch (const Error& e) {
            timed_out = true;
            EXPECT_NE(std::string(e.what()).find("timed out"),
                      std::string::npos)
                << e.what();
          }
        } else {
          // Keep the peer alive past rank 0's timeout so the failure is
          // a timeout, not a dropped connection.
          std::this_thread::sleep_for(std::chrono::milliseconds(900));
        }
      },
      /*recv_timeout_s=*/0.3);
  EXPECT_TRUE(timed_out.load());
}

TEST(TcpFaultTest, KilledPeerSurfacesAsErrorNotHang) {
  // Rank 1 "crashes" (sockets torn down, nothing flushed); the survivors
  // must get an error from any recv involving it — well before the
  // 20 s timeout backstop.
  std::atomic<int> errors_seen{0};
  run_ranks(
      Backend::kTcp, 3,
      [&](Transport& t) {
        if (t.rank() == 1) {
          auto& tcp = static_cast<TcpTransport&>(t);
          tcp.hard_kill();
          return;
        }
        try {
          t.recv(1, 7);  // rank 1 never sends: must fail fast
          ADD_FAILURE() << "recv from killed peer returned";
        } catch (const Error&) {
          errors_seen.fetch_add(1);
        }
      },
      /*recv_timeout_s=*/20.0);
  EXPECT_EQ(errors_seen.load(), 2);
}

TEST(TcpFaultTest, CollectiveWithKilledPeerFails) {
  std::atomic<int> errors_seen{0};
  run_ranks(
      Backend::kTcp, 3,
      [&](Transport& t) {
        if (t.rank() == 1) {
          static_cast<TcpTransport&>(t).hard_kill();
          return;
        }
        try {
          t.allreduce_sum(1.0);
          ADD_FAILURE() << "collective with killed peer returned";
        } catch (const Error&) {
          errors_seen.fetch_add(1);
        }
      },
      /*recv_timeout_s=*/20.0);
  EXPECT_EQ(errors_seen.load(), 2);
}

TEST(TcpTest, RejectsBadConfig) {
  TcpConfig cfg;
  cfg.rank = 2;
  cfg.num_ranks = 2;
  EXPECT_THROW(TcpTransport{cfg}, Error);
}

TEST(TcpTest, ConnectTimesOutWhenRendezvousNeverAppears) {
  // No rank 0 behind this port: the dial loop must give up, not spin
  // forever.
  TcpConfig cfg;
  cfg.rank = 1;
  cfg.num_ranks = 2;
  cfg.rendezvous_port = 1;  // reserved port, nothing listens
  cfg.connect_timeout_s = 0.3;
  EXPECT_THROW(TcpTransport{cfg}, Error);
}

}  // namespace
}  // namespace scmd
