/// \file tags_test.cpp
/// The wire-protocol tag registry (src/net/tags.hpp): the disjointness
/// proofs, stage-helper range checking, and the named singletons'
/// membership in their registered windows.  The interesting property —
/// overlap fails the build — can only be demonstrated negatively here;
/// these tests pin the machinery the static_asserts run on.

#include "net/tags.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>

namespace scmd::tags {
namespace {

TEST(TagsTest, RegistryIsWellFormedAndDisjointAtCompileTime) {
  // The same predicates the header static_asserts; evaluated again at
  // run time so a failure reports through the test harness too.
  static_assert(all_well_formed(kRegistry, kNumRanges));
  static_assert(all_disjoint(kRegistry, kNumRanges));
  EXPECT_TRUE(all_well_formed(kRegistry, kNumRanges));
  EXPECT_TRUE(all_disjoint(kRegistry, kNumRanges));
}

TEST(TagsTest, DisjointnessPredicateDetectsOverlap) {
  constexpr TagRange overlapping[] = {{"a", 100, 8}, {"b", 104, 4}};
  static_assert(!all_disjoint(overlapping, 2));
  constexpr TagRange touching[] = {{"a", 100, 4}, {"b", 104, 4}};
  static_assert(all_disjoint(touching, 2));
}

TEST(TagsTest, WellFormednessRejectsBadRanges) {
  constexpr TagRange empty[] = {{"a", 100, 0}};
  static_assert(!all_well_formed(empty, 1));
  constexpr TagRange negative[] = {{"a", -1, 4}};
  static_assert(!all_well_formed(negative, 1));
  constexpr TagRange into_collectives[] = {{"a", kCollective - 1, 2}};
  static_assert(!all_well_formed(into_collectives, 1));
}

TEST(TagsTest, EveryTagStaysBelowCollectiveWindow) {
  for (const TagRange& r : kRegistry)
    EXPECT_LT(r.base + r.width, kCollective) << r.name;
}

TEST(TagsTest, RegistryNamesAreUnique) {
  std::set<std::string> names;
  for (const TagRange& r : kRegistry) names.insert(r.name);
  EXPECT_EQ(names.size(), kNumRanges);
}

TEST(TagsTest, StageHelpersCoverTheirWindowsExactly) {
  // In-range values land inside the registered window...
  static_assert(import_tag(0) == kImportBase);
  static_assert(import_tag(kMaxStages - 1) == kImportBase + kMaxStages - 1);
  static_assert(writeback_tag(7) == kWritebackBase + 7);
  static_assert(refresh_tag(7) == kRefreshBase + 7);
  static_assert(migrate_tag(2, 1) == kMigrateBase + 5);
  static_assert(bench_tag(3) == kBenchBase + 3);
  // ...and the windows never collide even at their extremes (the
  // pre-registry bug: writeback stage 100 == migrate window).
  static_assert(writeback_tag(kMaxStages - 1) < kMigrateBase);
}

TEST(TagsTest, OutOfWindowStageThrows) {
  EXPECT_THROW(import_tag(-1), Error);
  EXPECT_THROW(import_tag(kMaxStages), Error);
  EXPECT_THROW(migrate_tag(3, 0), Error);  // axis 3 does not exist
  EXPECT_THROW(bench_tag(kBenchWidth), Error);
}

TEST(TagsTest, NamedSingletonsLiveInTheirWindows) {
  const auto contains = [](const char* name, int tag) {
    for (const TagRange& r : kRegistry) {
      if (std::string_view(r.name) == name)
        return tag >= r.base && tag < r.base + r.width;
    }
    return false;
  };
  EXPECT_TRUE(contains("gather", kGatherCounters));
  EXPECT_TRUE(contains("gather", kGatherState));
  EXPECT_TRUE(contains("gather", kGatherStats));
  EXPECT_TRUE(contains("balance.cost_gather", kBalanceCostGather));
  EXPECT_TRUE(contains("balance.plan_bcast", kBalancePlanBcast));
  EXPECT_TRUE(contains("check", kCheck));
  EXPECT_TRUE(contains("telemetry", kTelemetry));
  EXPECT_TRUE(contains("clock.ping", kClockPing));
  EXPECT_TRUE(contains("clock.pong", kClockPong));
  EXPECT_TRUE(contains("ckpt.snapshot_atoms", kSnapshotAtoms));
  EXPECT_TRUE(contains("ckpt.restore_blob", kRestoreBlob));
}

}  // namespace
}  // namespace scmd::tags
