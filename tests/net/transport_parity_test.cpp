// The distributed driver (run_parallel_md_rank) must reproduce the
// serial engine over ANY transport backend to the same tolerance as the
// threaded driver: positions to 1e-8, forces to 1e-7.  The TCP case runs
// a real 4-endpoint mesh over loopback (the multi-process equivalent is
// the app-level tools/launch_tcp.sh parity test).

#include <gtest/gtest.h>

#include <cmath>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

constexpr int kAtoms = 1500;
constexpr int kSteps = 3;
constexpr double kDt = 1.0 * units::kFemtosecond;

ParticleSystem build_initial() {
  Rng rng(77);
  return make_silica(kAtoms, 2.2, 350.0, rng);
}

struct Reference {
  double energy;
  std::vector<Vec3> pos, force;
};

Reference serial_reference() {
  ParticleSystem sys = build_initial();
  const VashishtaSiO2 field;
  SerialEngineConfig cfg;
  cfg.dt = kDt;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  for (int s = 0; s < kSteps; ++s) engine.step();
  Reference ref;
  ref.energy = engine.potential_energy();
  ref.pos.assign(sys.positions().begin(), sys.positions().end());
  ref.force.assign(sys.forces().begin(), sys.forces().end());
  return ref;
}

void expect_matches_reference(const ParticleSystem& sys,
                              const ParallelRunResult& res,
                              const Reference& ref) {
  EXPECT_NEAR(res.potential_energy, ref.energy,
              1e-8 * std::abs(ref.energy) + 1e-8);
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    EXPECT_NEAR(sys.positions()[i].x, ref.pos[u].x, 1e-8) << i;
    EXPECT_NEAR(sys.positions()[i].y, ref.pos[u].y, 1e-8) << i;
    EXPECT_NEAR(sys.positions()[i].z, ref.pos[u].z, 1e-8) << i;
    EXPECT_NEAR(sys.forces()[i].x, ref.force[u].x, 1e-7) << i;
    EXPECT_NEAR(sys.forces()[i].y, ref.force[u].y, 1e-7) << i;
    EXPECT_NEAR(sys.forces()[i].z, ref.force[u].z, 1e-7) << i;
  }
}

/// Run one rank of the distributed driver over the given endpoint;
/// every rank builds the identical system, rank 0's is compared.
ParallelRunResult run_rank(Transport& transport, ParticleSystem& sys) {
  const VashishtaSiO2 field;
  ParallelRunConfig cfg;
  cfg.dt = kDt;
  cfg.num_steps = kSteps;
  Comm comm(transport);
  return run_parallel_md_rank(sys, field, "SC",
                              ProcessGrid::factor(transport.num_ranks()),
                              cfg, comm);
}

TEST(TransportParityTest, RankDriverOverInProcMatchesSerial) {
  const Reference ref = serial_reference();
  const int P = 4;
  Cluster cluster(P);
  std::vector<ParticleSystem> systems;
  for (int r = 0; r < P; ++r) systems.push_back(build_initial());
  std::vector<ParallelRunResult> results(static_cast<std::size_t>(P));
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      try {
        results[static_cast<std::size_t>(r)] =
            run_rank(cluster.transport(r), systems[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  expect_matches_reference(systems[0], results[0], ref);
  // Non-root results still carry the global reduction.
  EXPECT_NEAR(results[2].potential_energy, ref.energy,
              1e-8 * std::abs(ref.energy) + 1e-8);
}

TEST(TransportParityTest, RankDriverOverTcpMatchesSerial) {
  const Reference ref = serial_reference();
  const int P = 4;
  const auto [rendezvous_fd, rendezvous_port] =
      bind_listener("127.0.0.1", 0);
  std::vector<ParticleSystem> systems;
  for (int r = 0; r < P; ++r) systems.push_back(build_initial());
  std::vector<ParallelRunResult> results(static_cast<std::size_t>(P));
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r, rendezvous_fd = rendezvous_fd,
                          rendezvous_port = rendezvous_port] {
      try {
        TcpConfig cfg;
        cfg.rank = r;
        cfg.num_ranks = P;
        cfg.rendezvous_port = rendezvous_port;
        if (r == 0) cfg.rendezvous_fd = rendezvous_fd;
        cfg.recv_timeout_s = 120.0;
        TcpTransport transport(cfg);
        results[static_cast<std::size_t>(r)] =
            run_rank(transport, systems[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  expect_matches_reference(systems[0], results[0], ref);
}

}  // namespace
}  // namespace scmd
