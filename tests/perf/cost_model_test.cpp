#include "perf/cost_model.hpp"

#include <gtest/gtest.h>

#include "perf/platform.hpp"
#include "support/error.hpp"

namespace scmd {
namespace {

TEST(PlatformTest, PresetsExistAndDiffer) {
  const PlatformParams xeon = xeon_cluster();
  const PlatformParams bgq = bluegene_q();
  EXPECT_EQ(xeon.name, "xeon");
  EXPECT_EQ(bgq.name, "bgq");
  // BG/Q per-task compute is slower (A2 core, 4 tasks/core); its
  // per-message latency is lower (torus vs commodity cluster).
  EXPECT_GT(bgq.t_search, xeon.t_search);
  EXPECT_LT(bgq.msg_latency, xeon.msg_latency);
}

TEST(PlatformTest, LookupByName) {
  EXPECT_EQ(platform_by_name("xeon").name, "xeon");
  EXPECT_EQ(platform_by_name("bgq").name, "bgq");
  EXPECT_THROW(platform_by_name("cray"), Error);
}

TEST(CostModelTest, ComputeTimeIsLinearInCounters) {
  PlatformParams p;
  p.t_search = 1.0;
  p.t_pair_eval = 10.0;
  p.t_triplet_eval = 100.0;
  p.t_list_scan = 2.0;
  EngineCounters c;
  c.tuples[2].search_steps = 5;
  c.tuples[3].search_steps = 7;
  c.evals[2] = 3;
  c.evals[3] = 2;
  c.list_scan_steps = 4;
  EXPECT_DOUBLE_EQ(compute_time(c, p), 5 + 7 + 8 + 30 + 200);
}

TEST(CostModelTest, CommTimeCombinesLatencyAndBandwidth) {
  PlatformParams p;
  p.msg_latency = 2.0;
  p.bytes_per_s = 100.0;
  EngineCounters c;
  c.messages = 6;
  c.bytes_imported = 300;
  c.bytes_written_back = 200;
  EXPECT_DOUBLE_EQ(comm_time(c, p), 12.0 + 5.0);
}

TEST(CostModelTest, StepCostSumsComponents) {
  PlatformParams p;
  p.t_search = 1.0;
  p.msg_latency = 1.0;
  p.bytes_per_s = 1.0;
  EngineCounters c;
  c.tuples[2].search_steps = 3;
  c.messages = 2;
  const StepCost sc = estimate_step(c, p);
  EXPECT_DOUBLE_EQ(sc.compute_s, 3.0);
  EXPECT_DOUBLE_EQ(sc.comm_s, 2.0);
  EXPECT_DOUBLE_EQ(sc.total(), 5.0);
}

TEST(CountersTest, AccumulationAndClear) {
  EngineCounters a, b;
  a.tuples[2].search_steps = 5;
  a.evals[3] = 2;
  b.tuples[2].search_steps = 7;
  b.list_pairs = 3;
  a += b;
  EXPECT_EQ(a.tuples[2].search_steps, 12u);
  EXPECT_EQ(a.evals[3], 2u);
  EXPECT_EQ(a.list_pairs, 3u);
  EXPECT_EQ(a.total_search_steps(), 12u);
  a.clear();
  EXPECT_EQ(a.tuples[2].search_steps, 0u);
}

}  // namespace
}  // namespace scmd
