// Lemma 5 in practice: the closed-form search-cost model must predict the
// measured enumeration counters of a uniform gas within modeling error.

#include "perf/analytic.hpp"

#include <gtest/gtest.h>

#include "cell/domain.hpp"
#include "pattern/analysis.hpp"
#include "pattern/generate.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tuples/ucp.hpp"

namespace scmd {
namespace {

struct Measured {
  TupleCounters counters;
  long long force_set = 0;
  SearchCostInputs inputs;
};

Measured measure_uniform(int n, bool collapse, double rho, int cells_axis,
                         std::uint64_t seed) {
  const double rcut = 3.0;
  const Box box = Box::cubic(rcut * cells_axis);
  const CellGrid grid(box, rcut);
  Rng rng(seed);
  const long long atoms = static_cast<long long>(
      rho * static_cast<double>(grid.num_cells()) + 0.5);
  std::vector<Vec3> pos;
  std::vector<int> type(static_cast<std::size_t>(atoms), 0);
  for (long long i = 0; i < atoms; ++i) {
    pos.push_back({rng.uniform(0, box.length(0)),
                   rng.uniform(0, box.length(1)),
                   rng.uniform(0, box.length(2))});
  }
  const Pattern psi = collapse ? make_sc(n) : generate_fs(n);
  const CellDomain dom = make_serial_domain(grid, halo_for(psi), pos, type);
  const CompiledPattern cp(psi);

  Measured m;
  m.counters = count_tuples(dom, cp, rcut);
  m.force_set = force_set_size(dom, cp);
  m.inputs.num_cells = grid.num_cells();
  m.inputs.atoms_per_cell =
      static_cast<double>(atoms) / static_cast<double>(grid.num_cells());
  m.inputs.n = n;
  m.inputs.pattern_size = static_cast<long long>(psi.size());
  m.inputs.pass_fraction = geometric_pass_fraction(rcut, rcut);
  return m;
}

class AnalyticModelTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(AnalyticModelTest, PredictsMeasuredCounters) {
  const auto [n, collapse] = GetParam();
  const Measured m = measure_uniform(n, collapse, 8.0, 5, 500 + n);

  // |S(n)| is exact in expectation; random occupancy fluctuation is small
  // at 1000 atoms.
  EXPECT_NEAR(static_cast<double>(m.force_set) /
                  predicted_force_set_size(m.inputs),
              1.0, 0.10)
      << "n=" << n;

  // Chain candidates and search steps involve the geometric pass
  // fraction; allow modeling error.
  EXPECT_NEAR(static_cast<double>(m.counters.chain_candidates) /
                  predicted_chain_candidates(m.inputs),
              1.0, 0.30)
      << "n=" << n;
  EXPECT_NEAR(static_cast<double>(m.counters.search_steps) /
                  predicted_search_steps(m.inputs),
              1.0, 0.30)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndCollapse, AnalyticModelTest,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Bool()));

TEST(AnalyticModelTest, SearchCostProportionalToPatternSize) {
  // Lemma 5's headline: T_UCP ∝ |Ψ| at fixed domain and density.
  const Measured fs = measure_uniform(3, false, 6.0, 4, 510);
  const Measured sc = measure_uniform(3, true, 6.0, 4, 510);
  const double step_ratio = static_cast<double>(fs.counters.search_steps) /
                            static_cast<double>(sc.counters.search_steps);
  const double size_ratio = static_cast<double>(fs.inputs.pattern_size) /
                            static_cast<double>(sc.inputs.pattern_size);
  EXPECT_NEAR(step_ratio / size_ratio, 1.0, 0.15);
}

TEST(AnalyticModelTest, GeometricPassFraction) {
  // Cells at exactly the cutoff: sphere/27-cell ratio ~ 0.155.
  EXPECT_NEAR(geometric_pass_fraction(1.0, 1.0), 0.1551, 0.001);
  // Larger cells shrink the pass fraction cubically.
  EXPECT_NEAR(geometric_pass_fraction(1.0, 2.0),
              geometric_pass_fraction(1.0, 1.0) / 8.0, 1e-12);
  EXPECT_THROW(geometric_pass_fraction(2.0, 1.0), Error);
}

TEST(AnalyticModelTest, RejectsBadInputs) {
  SearchCostInputs in;
  EXPECT_THROW(predicted_force_set_size(in), Error);
}

}  // namespace
}  // namespace scmd
