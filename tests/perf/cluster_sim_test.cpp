// The cluster simulator must agree with the real message-passing engine:
// same ghost populations and same per-rank work counters.  It must also
// reproduce the theory-level facts the figures rest on.

#include "perf/cluster_sim.hpp"

#include <gtest/gtest.h>

#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(NeighborCountTest, OctantAndFullShell) {
  EXPECT_EQ(import_neighbor_ranks(ProcessGrid({4, 4, 4}), true), 7);
  EXPECT_EQ(import_neighbor_ranks(ProcessGrid({4, 4, 4}), false), 26);
  // Degenerate grids have fewer distinct peers.
  EXPECT_EQ(import_neighbor_ranks(ProcessGrid({2, 1, 1}), true), 1);
  EXPECT_EQ(import_neighbor_ranks(ProcessGrid({1, 1, 1}), true), 0);
  EXPECT_EQ(import_neighbor_ranks(ProcessGrid({2, 2, 1}), false), 3);
}

TEST(ModeledMessagesTest, ScUsesStagesFsUsesNeighbors) {
  EXPECT_EQ(modeled_messages(ProcessGrid({4, 4, 4}), true), 6);
  EXPECT_EQ(modeled_messages(ProcessGrid({4, 4, 4}), false), 52);
  EXPECT_EQ(modeled_messages(ProcessGrid({2, 1, 1}), true), 2);
  EXPECT_EQ(modeled_messages(ProcessGrid({1, 1, 1}), true), 0);
}

TEST(ClusterSimTest, AgreesWithRealParallelEngine) {
  Rng rng(120);
  const ParticleSystem sys = make_silica(2400, 2.2, 300.0, rng);
  const VashishtaSiO2 field;
  const ProcessGrid pgrid({2, 2, 2});

  for (const std::string strategy : {"SC", "FS", "Hybrid"}) {
    // Real run, 0 steps: one force computation.
    ParticleSystem probe = sys;
    ParallelRunConfig cfg;
    cfg.dt = 1.0 * units::kFemtosecond;
    cfg.num_steps = 0;
    const ParallelRunResult real =
        run_parallel_md(probe, field, strategy, pgrid, cfg);

    const ClusterSimulator sim(sys, field);
    const ClusterSample virt = sim.measure(strategy, pgrid, 8);

    // Work counters must match the real engine exactly (same algorithm,
    // same domains).
    EXPECT_EQ(virt.max_rank.tuples[2].search_steps,
              real.max_rank.tuples[2].search_steps)
        << strategy;
    EXPECT_EQ(virt.max_rank.tuples[3].accepted,
              real.max_rank.tuples[3].accepted)
        << strategy;
    EXPECT_EQ(virt.max_rank.evals[2], real.max_rank.evals[2]) << strategy;
    EXPECT_EQ(virt.max_rank.evals[3], real.max_rank.evals[3]) << strategy;
    EXPECT_EQ(virt.max_rank.list_scan_steps, real.max_rank.list_scan_steps)
        << strategy;
  }
}

TEST(ClusterSimTest, GhostPopulationMatchesRealExchangeForSc) {
  Rng rng(121);
  const ParticleSystem sys = make_silica(2400, 2.2, 300.0, rng);
  const VashishtaSiO2 field;
  const ProcessGrid pgrid({2, 2, 2});

  ParticleSystem probe = sys;
  ParallelRunConfig cfg;
  cfg.dt = 1.0 * units::kFemtosecond;
  cfg.num_steps = 0;
  const ParallelRunResult real =
      run_parallel_md(probe, field, "SC", pgrid, cfg);

  const ClusterSimulator sim(sys, field);
  const ClusterSample virt = sim.measure("SC", pgrid, 8);

  // The virtual ghost count is the per-grid maximum (the paper's
  // V_import = max_n); the real exchange ships the union slab, so it is
  // an upper bound within a small factor.
  EXPECT_LE(virt.max_rank.ghost_atoms_imported,
            real.max_rank.ghost_atoms_imported);
  EXPECT_GT(virt.max_rank.ghost_atoms_imported,
            real.max_rank.ghost_atoms_imported / 3);
}

TEST(ClusterSimTest, ScImportsFractionOfFullShell) {
  Rng rng(122);
  const ParticleSystem sys = make_silica(2400, 2.2, 300.0, rng);
  const VashishtaSiO2 field;
  const ClusterSimulator sim(sys, field);
  const ProcessGrid pgrid({2, 2, 2});
  const auto sc = sim.measure("SC", pgrid, 8);
  const auto fs = sim.measure("FS", pgrid, 8);
  EXPECT_LT(sc.max_rank.ghost_atoms_imported,
            fs.max_rank.ghost_atoms_imported);
}

TEST(ClusterSimTest, SamplingBoundsFullMeasurement) {
  Rng rng(123);
  const ParticleSystem sys = make_silica(2400, 2.2, 300.0, rng);
  const VashishtaSiO2 field;
  const ClusterSimulator sim(sys, field);
  const ProcessGrid pgrid({2, 2, 2});
  const auto full = sim.measure("SC", pgrid, 8);
  const auto sampled = sim.measure("SC", pgrid, 2);
  EXPECT_EQ(sampled.ranks_sampled, 2);
  EXPECT_LE(sampled.max_rank.tuples[3].search_steps,
            full.max_rank.tuples[3].search_steps);
  // Uniform system: sampled max within 25% of the true max.
  EXPECT_GT(static_cast<double>(sampled.max_rank.tuples[3].search_steps),
            0.75 * static_cast<double>(full.max_rank.tuples[3].search_steps));
}

TEST(ClusterSimTest, ForceSetRatioMatchesFig7) {
  Rng rng(124);
  const ParticleSystem sys = make_silica(1500, 2.2, 300.0, rng);
  const VashishtaSiO2 field;
  const ClusterSimulator sim(sys, field);
  const ProcessGrid p1({1, 1, 1});
  const auto sc = sim.measure("SC", p1, 1, /*measure_force_set=*/true);
  const auto fs = sim.measure("FS", p1, 1, /*measure_force_set=*/true);
  const double ratio = static_cast<double>(fs.max_rank.force_set[3]) /
                       static_cast<double>(sc.max_rank.force_set[3]);
  EXPECT_NEAR(ratio, 729.0 / 378.0, 0.1);
}

}  // namespace
}  // namespace scmd
