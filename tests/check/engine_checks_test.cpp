// Engine-level invariant checks (docs/CHECKING.md): force balance, tuple
// ownership census, ghost/home consistency, and replay parity — each
// verified to pass on healthy input and to fail loudly on an injected
// bug, both single-rank (null channel) and across a real message-passing
// cluster.

#include "check/engine_checks.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "check/invariant.hpp"
#include "parallel/check_channel.hpp"
#include "parallel/comm.hpp"

namespace scmd {
namespace {

using check::FailureAction;
using check::InvariantViolation;
using check::Options;

#if defined(SCMD_CHECK_ENABLED)

class EngineChecksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Options o;
    o.enabled = true;
    o.action = FailureAction::kThrow;
    check::set_options(o);
    check::reset_checks_passed();
  }
  void TearDown() override {
    check::set_options(Options{});
    check::bind_rank(-1);
  }
};

// --- force balance ---------------------------------------------------

TEST_F(EngineChecksTest, BalancedForcesPassAndCount) {
  const std::vector<Vec3> f = {{1.0, -2.0, 3.0}, {-1.0, 2.0, -3.0}};
  EXPECT_NO_THROW(check::check_force_balance(nullptr, f));
  EXPECT_EQ(check::checks_passed(), 1u);
}

TEST_F(EngineChecksTest, NetForceViolatesNewtonsThirdLaw) {
  const std::vector<Vec3> f = {{1.0, 0.0, 0.0}, {-1.0, 0.5, 0.0}};
  EXPECT_THROW(check::check_force_balance(nullptr, f), InvariantViolation);
}

TEST_F(EngineChecksTest, TinyFloatingPointResidualIsTolerated) {
  // Residual ~1e-13 of the magnitude scale, well inside force_rel_tol.
  const std::vector<Vec3> f = {{1e4, 0.0, 0.0}, {-1e4 + 1e-9, 0.0, 0.0}};
  EXPECT_NO_THROW(check::check_force_balance(nullptr, f));
}

// --- ghost/home consistency ------------------------------------------

TEST_F(EngineChecksTest, ConsistentGhostsPass) {
  const Box box = Box::cubic(10.0);
  const std::vector<std::int64_t> own_gid = {0, 1};
  const std::vector<Vec3> own_pos = {{1.0, 1.0, 1.0}, {9.5, 5.0, 5.0}};
  // Ghost of atom 1 held in an unwrapped frame one box length away.
  const std::vector<std::int64_t> gh_gid = {1};
  const std::vector<Vec3> gh_pos = {{-0.5, 5.0, 5.0}};
  EXPECT_NO_THROW(check::check_ghost_consistency(
      nullptr, box, own_gid, own_pos, gh_gid, gh_pos, 2));
  EXPECT_EQ(check::checks_passed(), 1u);
}

TEST_F(EngineChecksTest, DriftedGhostFails) {
  const Box box = Box::cubic(10.0);
  const std::vector<std::int64_t> own_gid = {0, 1};
  const std::vector<Vec3> own_pos = {{1.0, 1.0, 1.0}, {9.5, 5.0, 5.0}};
  const std::vector<std::int64_t> gh_gid = {1};
  const std::vector<Vec3> gh_pos = {{-0.5, 5.0, 5.2}};  // 0.2 off
  EXPECT_THROW(check::check_ghost_consistency(nullptr, box, own_gid, own_pos,
                                              gh_gid, gh_pos, 2),
               InvariantViolation);
}

TEST_F(EngineChecksTest, OrphanGhostFails) {
  const Box box = Box::cubic(10.0);
  const std::vector<std::int64_t> own_gid = {0};
  const std::vector<Vec3> own_pos = {{1.0, 1.0, 1.0}};
  const std::vector<std::int64_t> gh_gid = {7};  // nobody owns gid 7
  const std::vector<Vec3> gh_pos = {{2.0, 2.0, 2.0}};
  EXPECT_THROW(check::check_ghost_consistency(nullptr, box, own_gid, own_pos,
                                              gh_gid, gh_pos, -1),
               InvariantViolation);
}

TEST_F(EngineChecksTest, AtomCountMismatchFails) {
  const Box box = Box::cubic(10.0);
  const std::vector<std::int64_t> own_gid = {0, 1};
  const std::vector<Vec3> own_pos = {{1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}};
  EXPECT_THROW(
      check::check_ghost_consistency(nullptr, box, own_gid, own_pos, {}, {},
                                     3),
      InvariantViolation);
}

// --- tuple ownership census ------------------------------------------

TEST_F(EngineChecksTest, DistinctTuplesPass) {
  const std::vector<std::int64_t> flat = {0, 1, 2, /**/ 1, 2, 3};
  EXPECT_NO_THROW(check::check_tuple_ownership(nullptr, 3, flat, 2));
  EXPECT_EQ(check::checks_passed(), 1u);
}

TEST_F(EngineChecksTest, ReversedChainIsTheSameTupleAndFails) {
  // (0,1,2) and its reversal (2,1,0) name one undirected triplet.
  const std::vector<std::int64_t> flat = {0, 1, 2, /**/ 2, 1, 0};
  EXPECT_THROW(check::check_tuple_ownership(nullptr, 3, flat, -1),
               InvariantViolation);
}

TEST_F(EngineChecksTest, ChainsOverTheSameAtomSetAreDistinctTuples) {
  // A mutually-close triangle yields three distinct chains over one atom
  // set; the census must not merge them (they are different terms).
  const std::vector<std::int64_t> flat = {0, 1, 2, /**/ 1, 0, 2,
                                          /**/ 0, 2, 1};
  EXPECT_NO_THROW(check::check_tuple_ownership(nullptr, 3, flat, 3));
}

TEST_F(EngineChecksTest, TupleCountMismatchAgainstReferenceFails) {
  const std::vector<std::int64_t> flat = {0, 1, /**/ 1, 2};
  EXPECT_THROW(check::check_tuple_ownership(nullptr, 2, flat, 3),
               InvariantViolation);
}

// --- replay parity ----------------------------------------------------

TEST_F(EngineChecksTest, MatchingReplayPasses) {
  const std::vector<Vec3> a = {{1.0, 2.0, 3.0}, {-1.0, -2.0, -3.0}};
  EXPECT_NO_THROW(check::check_replay_parity(nullptr, a, a, -5.0, -5.0));
  EXPECT_EQ(check::checks_passed(), 1u);
}

TEST_F(EngineChecksTest, DivergedReplayForceFails) {
  const std::vector<Vec3> a = {{1.0, 2.0, 3.0}};
  const std::vector<Vec3> b = {{1.0, 2.0, 3.1}};
  EXPECT_THROW(check::check_replay_parity(nullptr, a, b, -5.0, -5.0),
               InvariantViolation);
}

TEST_F(EngineChecksTest, DivergedReplayEnergyFails) {
  const std::vector<Vec3> a = {{1.0, 2.0, 3.0}};
  EXPECT_THROW(check::check_replay_parity(nullptr, a, a, -5.0, -5.001),
               InvariantViolation);
}

// --- collective behavior over a real cluster --------------------------

TEST_F(EngineChecksTest, CrossRankDuplicateOwnershipCaughtOnEveryRank) {
  // Injected ownership bug: ranks 1 and 2 both claim pair (10,11) — rank
  // 2 in reversed orientation.  The reduced verdict must fail *every*
  // rank, not just the inspector.
  std::atomic<int> failures{0};
  run_cluster(4, [&](Comm& comm) {
    CommCheckChannel ch(comm);
    std::vector<std::int64_t> flat;
    if (comm.rank() == 1) flat = {10, 11};
    if (comm.rank() == 2) flat = {11, 10};
    try {
      check::check_tuple_ownership(&ch, 2, flat, -1);
    } catch (const InvariantViolation&) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 4);
}

TEST_F(EngineChecksTest, CrossRankPartitionedTuplesPass) {
  run_cluster(4, [&](Comm& comm) {
    CommCheckChannel ch(comm);
    const std::int64_t base = 10 * comm.rank();
    const std::vector<std::int64_t> flat = {base, base + 1, base + 1,
                                            base + 2};
    check::check_tuple_ownership(&ch, 2, flat, 8);
  });
  EXPECT_GE(check::checks_passed(), 1u);
}

TEST_F(EngineChecksTest, CrossRankForceBalancePassesWhenSumVanishes) {
  run_cluster(4, [&](Comm& comm) {
    CommCheckChannel ch(comm);
    // Each rank holds a nonzero local sum; only the global sum vanishes.
    const double s = comm.rank() < 2 ? 1.0 : -1.0;
    const std::vector<Vec3> f = {{s, 2.0 * s, -s}};
    check::check_force_balance(&ch, f);
  });
}

TEST_F(EngineChecksTest, CrossRankGhostTablesGatherAndVerify) {
  const Box box = Box::cubic(8.0);
  run_cluster(2, [&](Comm& comm) {
    CommCheckChannel ch(comm);
    // Rank r owns atom r; each rank holds the other's atom as a ghost.
    const std::vector<std::int64_t> own_gid = {comm.rank()};
    const std::vector<Vec3> own_pos = {
        {1.0 + 4.0 * comm.rank(), 1.0, 1.0}};
    const std::vector<std::int64_t> gh_gid = {1 - comm.rank()};
    const std::vector<Vec3> gh_pos = {
        {1.0 + 4.0 * (1 - comm.rank()), 1.0, 1.0}};
    check::check_ghost_consistency(&ch, box, own_gid, own_pos, gh_gid,
                                   gh_pos, 2);
  });
  EXPECT_GE(check::checks_passed(), 1u);
}

TEST_F(EngineChecksTest, CollectiveInvariantReportsRemoteViolation) {
  std::atomic<int> remote_reports{0};
  run_cluster(3, [&](Comm& comm) {
    CommCheckChannel ch(comm);
    const bool local_ok = comm.rank() != 2;
    try {
      check::collective_invariant(&ch, local_ok, "local failure on rank 2",
                                  "test invariant");
    } catch (const InvariantViolation& e) {
      const std::string what = e.what();
      if (what.find("another rank") != std::string::npos)
        remote_reports.fetch_add(1);
    }
  });
  // Ranks 0 and 1 fail with the remote-violation message.
  EXPECT_EQ(remote_reports.load(), 2);
}

TEST_F(EngineChecksTest, DisabledChecksAreNoOps) {
  check::set_options(Options{});
  const std::vector<Vec3> f = {{1.0, 0.0, 0.0}};  // blatantly unbalanced
  EXPECT_NO_THROW(check::check_force_balance(nullptr, f));
  const std::vector<std::int64_t> dup = {0, 1, /**/ 0, 1};
  EXPECT_NO_THROW(check::check_tuple_ownership(nullptr, 2, dup, -1));
  EXPECT_EQ(check::checks_passed(), 0u);
}

#endif  // SCMD_CHECK_ENABLED

}  // namespace
}  // namespace scmd
