// Core invariant-checker machinery (docs/CHECKING.md): the runtime gate,
// failure reporting through both FailureActions, phase-scope paths, rank
// binding, and the passed-check counter.

#include "check/invariant.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace scmd::check {
namespace {

#if defined(SCMD_CHECK_ENABLED)

// Every test restores the default (disabled) options so the global gate
// never leaks into other tests in this binary.
class InvariantTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_options(Options{});
    bind_rank(-1);
    reset_checks_passed();
  }

  void enable_throwing() {
    Options o;
    o.enabled = true;
    o.action = FailureAction::kThrow;
    set_options(o);
  }
};

TEST_F(InvariantTest, DisabledGateSkipsConditionAndNeverFails) {
  set_options(Options{});
  ASSERT_FALSE(enabled());
  int evaluations = 0;
  // The condition expression must not even be evaluated while disabled.
  SCMD_INVARIANT((++evaluations, false), "must not trigger");
  EXPECT_EQ(evaluations, 0);
}

TEST_F(InvariantTest, ThrowActionCarriesExpressionMessageAndLocation) {
  enable_throwing();
  try {
    SCMD_INVARIANT(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "SCMD_INVARIANT did not throw";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
    EXPECT_NE(what.find("invariant_test.cpp"), std::string::npos) << what;
  }
}

TEST_F(InvariantTest, ScopePathNestsAndUnwinds) {
  enable_throwing();
  EXPECT_EQ(Scope::current_path(), "");
  {
    SCMD_CHECK_SCOPE("step");
    {
      SCMD_CHECK_SCOPE("force");
      EXPECT_EQ(Scope::current_path(), "step/force");
    }
    EXPECT_EQ(Scope::current_path(), "step");
  }
  EXPECT_EQ(Scope::current_path(), "");
}

TEST_F(InvariantTest, FailureReportNamesPhaseAndBoundRank) {
  enable_throwing();
  bind_rank(3);
  EXPECT_EQ(bound_rank(), 3);
  try {
    SCMD_CHECK_SCOPE("step");
    SCMD_CHECK_SCOPE("ghost_consistency");
    SCMD_INVARIANT(false, "ghost drifted");
    FAIL() << "SCMD_INVARIANT did not throw";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("step/ghost_consistency"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 3"), std::string::npos) << what;
  }
}

TEST_F(InvariantTest, ScopesOpenedWhileDisabledDoNotLeakIntoThePath) {
  set_options(Options{});
  {
    SCMD_CHECK_SCOPE("ignored");
    enable_throwing();
    // The scope above was opened with the gate off, so it never pushed.
    EXPECT_EQ(Scope::current_path(), "");
  }
}

TEST_F(InvariantTest, PassedCheckCounterAccumulatesAndResets) {
  enable_throwing();
  reset_checks_passed();
  EXPECT_EQ(checks_passed(), 0u);
  count_check();
  count_check();
  EXPECT_EQ(checks_passed(), 2u);
  reset_checks_passed();
  EXPECT_EQ(checks_passed(), 0u);
}

TEST_F(InvariantTest, InitFromEnvEnablesOnScmdCheckOne) {
  set_options(Options{});
  ::setenv("SCMD_CHECK", "1", 1);
  EXPECT_TRUE(init_from_env());
  EXPECT_TRUE(enabled());
  ::unsetenv("SCMD_CHECK");
}

TEST_F(InvariantTest, InitFromEnvIgnoresOtherValues) {
  set_options(Options{});
  ::setenv("SCMD_CHECK", "0", 1);
  EXPECT_FALSE(init_from_env());
  EXPECT_FALSE(enabled());
  ::unsetenv("SCMD_CHECK");
}

using InvariantDeathTest = InvariantTest;

TEST_F(InvariantDeathTest, AbortActionPrintsReportAndDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Options o;
  o.enabled = true;
  o.action = FailureAction::kAbort;
  set_options(o);
  EXPECT_DEATH(
      {
        SCMD_CHECK_SCOPE("step");
        SCMD_INVARIANT(false, "total force not zero");
      },
      "SCMD_INVARIANT failure(.|\n)*invariant violated(.|\n)*total force "
      "not zero(.|\n)*step");
  set_options(Options{});
}

#else  // !SCMD_CHECK_ENABLED

TEST(InvariantTest, MacrosCompileToNothingWhenCheckerIsCompiledOut) {
  int evaluations = 0;
  SCMD_INVARIANT((++evaluations, false), "compiled out");
  SCMD_CHECK_SCOPE("compiled out");
  EXPECT_EQ(evaluations, 0);
}

#endif

}  // namespace
}  // namespace scmd::check
