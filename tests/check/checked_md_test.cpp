// The invariant checker riding a real simulation (docs/CHECKING.md):
// randomized multi-step silica runs with the balancer and the tuple
// cache active must pass every invariant (ownership census, force
// balance, ghost consistency, replay parity) in throw mode, and an
// oversubscribed cached run (more ranks than hardware threads) must
// still reproduce the serial engine — the ScratchPool regression guard.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "check/invariant.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

#if defined(SCMD_CHECK_ENABLED)

class CheckedMdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    check::Options o;
    o.enabled = true;
    o.action = check::FailureAction::kThrow;
    check::set_options(o);
    check::reset_checks_passed();
  }
  void TearDown() override {
    check::set_options(check::Options{});
    check::bind_rank(-1);
  }
};

struct Reference {
  double energy;
  std::vector<Vec3> pos, force;
};

Reference serial_reference(const ParticleSystem& initial,
                           const ForceField& field,
                           const std::string& strategy, double dt,
                           int steps) {
  // The reference runs with the checker off; only the checked run under
  // test may consume invariant machinery.
  const check::Options saved = check::options();
  check::set_options(check::Options{});
  ParticleSystem sys = initial;
  SerialEngineConfig cfg;
  cfg.dt = dt;
  SerialEngine engine(sys, field, make_strategy(strategy, field), cfg);
  for (int s = 0; s < steps; ++s) engine.step();
  Reference ref;
  ref.energy = engine.potential_energy();
  ref.pos.assign(sys.positions().begin(), sys.positions().end());
  ref.force.assign(sys.forces().begin(), sys.forces().end());
  check::set_options(saved);
  return ref;
}

// Randomized stress: 20 steps, rebalance every 3 steps, tuple cache with
// a generous skin so the run mixes rebuild and replay steps.  Every
// invariant fires in throw mode; any violation fails the test with the
// full phase-path report.
class CheckedMdSeedTest : public CheckedMdTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(CheckedMdSeedTest, TwentyStepBalancedCachedRunPassesAllInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Hot start: enough thermal drift that the skin is exhausted every few
  // steps, so the run interleaves cache rebuilds (where the balancer may
  // re-cut) with replay steps (where the parity check fires).
  ParticleSystem sys = make_silica(1500, 2.2, 3000.0, rng);
  const VashishtaSiO2 field;

  ParallelRunConfig cfg;
  cfg.dt = 1.0 * units::kFemtosecond;
  cfg.num_steps = 20;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = 0.3;
  BalanceConfig bc;
  bc.mode = BalanceConfig::Mode::kEvery;
  bc.every = 3;
  cfg.make_balancer = make_rebalancer_factory(bc);

  ParallelRunResult res;
  EXPECT_NO_THROW(res = run_parallel_md(sys, field, "SC",
                                        ProcessGrid({2, 2, 2}), cfg));
  EXPECT_GE(res.rebalances, 1);
  EXPECT_GT(res.total.cache_replayed, 0u);
  // Force balance runs every step on every pipeline, so the counter must
  // have moved a lot; the census and parity run on their cadences.
  EXPECT_GT(check::checks_passed(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckedMdSeedTest,
                         ::testing::Values(101, 202, 303));

TEST_F(CheckedMdTest, SerialCachedRunPassesAllInvariants) {
  Rng rng(404);
  ParticleSystem sys = make_silica(648, 2.2, 400.0, rng);
  const VashishtaSiO2 field;
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = 0.3;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  EXPECT_NO_THROW({
    for (int s = 0; s < 20; ++s) engine.step();
  });
  EXPECT_GT(engine.counters().cache_replayed, 0u);
  EXPECT_GT(check::checks_passed(), 20u);
}

// ScratchPool regression (src/engines/tuple_strategy.cpp): more ranks
// than this machine has hardware threads, all replaying cached lists
// concurrently.  The pool must hand each rank-thread its own scratch
// block (no reuse-after-release across a still-running peer), which the
// serial comparison detects as force corruption if it breaks.
TEST_F(CheckedMdTest, OversubscribedCachedReplayMatchesSerial) {
  Rng rng(505);
  const ParticleSystem initial = make_silica(1500, 2.2, 400.0, rng);
  const VashishtaSiO2 field;
  const double dt = 0.5 * units::kFemtosecond;
  const int steps = 6;

  const Reference ref = serial_reference(initial, field, "SC", dt, steps);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = dt;
  cfg.num_steps = steps;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = 0.3;
  ParallelRunResult res;
  // 12 rank-threads beats hardware_concurrency on typical CI hosts, so
  // the scheduler interleaves replays on shared cores.
  EXPECT_NO_THROW(res = run_parallel_md(sys, field, "SC",
                                        ProcessGrid({3, 2, 2}), cfg));
  EXPECT_GT(res.total.cache_replayed, 0u);

  EXPECT_NEAR(res.potential_energy, ref.energy,
              1e-8 * std::abs(ref.energy) + 1e-8);
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    EXPECT_NEAR(sys.positions()[i].x, ref.pos[ii].x, 1e-8) << i;
    EXPECT_NEAR(sys.positions()[i].y, ref.pos[ii].y, 1e-8) << i;
    EXPECT_NEAR(sys.positions()[i].z, ref.pos[ii].z, 1e-8) << i;
    EXPECT_NEAR(sys.forces()[i].x, ref.force[ii].x, 1e-7) << i;
    EXPECT_NEAR(sys.forces()[i].y, ref.force[ii].y, 1e-7) << i;
    EXPECT_NEAR(sys.forces()[i].z, ref.force[ii].z, 1e-7) << i;
  }
}

#endif  // SCMD_CHECK_ENABLED

}  // namespace
}  // namespace scmd
