// Conservation across in-flight rebalances: a parallel run that re-cuts
// its decomposition mid-run (migrating every atom onto the new bricks)
// must still reproduce the serial engine's trajectory bit-for-tolerance —
// same atoms, same momentum, same energies, same forces.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

Vec3 total_momentum(const ParticleSystem& sys) {
  Vec3 p{0.0, 0.0, 0.0};
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const double m = sys.mass_of_atom(i);
    p.x += m * sys.velocities()[i].x;
    p.y += m * sys.velocities()[i].y;
    p.z += m * sys.velocities()[i].z;
  }
  return p;
}

struct Reference {
  double energy;
  Vec3 momentum;
  std::vector<Vec3> pos, force;
};

Reference serial_reference(const ParticleSystem& initial,
                           const ForceField& field,
                           const std::string& strategy, double dt,
                           int steps) {
  ParticleSystem sys = initial;
  SerialEngineConfig cfg;
  cfg.dt = dt;
  SerialEngine engine(sys, field, make_strategy(strategy, field), cfg);
  for (int s = 0; s < steps; ++s) engine.step();
  Reference ref;
  ref.energy = engine.potential_energy();
  ref.momentum = total_momentum(sys);
  ref.pos.assign(sys.positions().begin(), sys.positions().end());
  ref.force.assign(sys.forces().begin(), sys.forces().end());
  return ref;
}

// The compressed dense phase of the two-phase system is stiff; keep dt
// tiny so the trajectory stays physical (the balancer is exercised by
// the density contrast, not by the dynamics).
ParticleSystem two_phase_system() {
  Rng rng(210);
  return make_two_phase_silica(3000, 0.8, 2.2, 300.0, rng);
}

class RebalanceMdTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RebalanceMdTest, ForcedRebalanceMatchesSerialRun) {
  const std::string strategy = GetParam();
  const ParticleSystem initial = two_phase_system();
  const VashishtaSiO2 field;
  const double dt = 0.001 * units::kFemtosecond;
  const int steps = 5;

  const Reference ref =
      serial_reference(initial, field, strategy, dt, steps);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = dt;
  cfg.num_steps = steps;
  BalanceConfig bc;
  bc.mode = BalanceConfig::Mode::kEvery;  // re-cut unconditionally
  bc.every = 2;
  cfg.make_balancer = make_rebalancer_factory(bc);
  const ParallelRunResult res =
      run_parallel_md(sys, field, strategy, ProcessGrid({2, 2, 2}), cfg);

  // The run must actually have re-cut (steps 2 and 4), with MD steps
  // executed on the non-uniform decomposition afterwards.
  EXPECT_GE(res.rebalances, 2);
  ASSERT_EQ(sys.num_atoms(), initial.num_atoms());

  EXPECT_NEAR(res.potential_energy, ref.energy,
              1e-8 * std::abs(ref.energy) + 1e-8);
  const Vec3 p = total_momentum(sys);
  EXPECT_NEAR(p.x, ref.momentum.x, 1e-8);
  EXPECT_NEAR(p.y, ref.momentum.y, 1e-8);
  EXPECT_NEAR(p.z, ref.momentum.z, 1e-8);
  for (int i = 0; i < sys.num_atoms(); ++i) {
    EXPECT_NEAR(sys.positions()[i].x, ref.pos[static_cast<std::size_t>(i)].x,
                1e-8)
        << i;
    EXPECT_NEAR(sys.positions()[i].y, ref.pos[static_cast<std::size_t>(i)].y,
                1e-8)
        << i;
    EXPECT_NEAR(sys.positions()[i].z, ref.pos[static_cast<std::size_t>(i)].z,
                1e-8)
        << i;
    EXPECT_NEAR(sys.forces()[i].x, ref.force[static_cast<std::size_t>(i)].x,
                1e-7)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, RebalanceMdTest,
                         ::testing::Values("SC", "FS", "Hybrid"),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

TEST(RebalanceMdTest, AutoModeTriggersOnTheTwoPhaseSkewAndImproves) {
  const ParticleSystem initial = two_phase_system();
  const VashishtaSiO2 field;
  const double dt = 0.001 * units::kFemtosecond;
  const int steps = 6;

  const Reference ref = serial_reference(initial, field, "SC", dt, steps);

  ParticleSystem sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = dt;
  cfg.num_steps = steps;
  BalanceConfig bc;
  bc.mode = BalanceConfig::Mode::kAuto;
  bc.min_interval = 2;
  cfg.make_balancer = make_rebalancer_factory(bc);
  const ParallelRunResult res =
      run_parallel_md(sys, field, "SC", ProcessGrid({2, 2, 2}), cfg);

  // The 80/20 density split leaves a 2x2x2 uniform grid well above the
  // 1.2 trigger, so auto mode must have re-cut at least once and the
  // measured ratio must have come down close to flat.
  EXPECT_GE(res.rebalances, 1);
  EXPECT_LT(res.last_balance_ratio, 1.2);
  EXPECT_NEAR(res.potential_energy, ref.energy,
              1e-8 * std::abs(ref.energy) + 1e-8);
  for (int i = 0; i < sys.num_atoms(); ++i) {
    EXPECT_NEAR(sys.positions()[i].x, ref.pos[static_cast<std::size_t>(i)].x,
                1e-8)
        << i;
  }
}

}  // namespace
}  // namespace scmd
