// CostField: fine-lattice apportionment of measured per-cell costs.  The
// invariant that makes the balancer exact is mass conservation — every
// unit of measured work lands somewhere on the fine lattice.

#include "balance/cost_field.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cell/domain.hpp"
#include "cell/grid.hpp"
#include "geom/box.hpp"
#include "support/error.hpp"

namespace scmd {
namespace {

TEST(CostFieldTest, RecommendResIsTwiceTheLcmOfGridDims) {
  // The silica pair (12^3) and triplet (24^3) grids on one box.
  EXPECT_EQ(CostField::recommend_res({{12, 12, 12}, {24, 24, 24}}),
            (Int3{48, 48, 48}));
  EXPECT_EQ(CostField::recommend_res({{6, 4, 3}}), (Int3{12, 8, 6}));
  EXPECT_EQ(CostField::recommend_res({{6, 4, 3}, {4, 6, 5}}),
            (Int3{24, 24, 30}));
}

TEST(CostFieldTest, BinOfCoversTheBoxAndClamps) {
  const Box box = Box::cubic(10.0);
  CostField field(box, {5, 4, 2});
  EXPECT_EQ(field.bin_of({0.1, 0.1, 0.1}), 0);
  // x bin 4, y bin 3, z bin 1 -> (1*4 + 3)*5 + 4.
  EXPECT_EQ(field.bin_of({9.9, 9.9, 9.9}), (1 * 4 + 3) * 5 + 4);
  // Exactly at the upper face clamps into the last bin instead of
  // running off the lattice.
  EXPECT_EQ(field.bin_of({10.0, 10.0, 10.0}), (1 * 4 + 3) * 5 + 4);

  field.add(field.bin_of({0.1, 0.1, 0.1}), 2.5);
  field.add(field.bin_of({9.9, 0.1, 0.1}), 1.5);
  EXPECT_DOUBLE_EQ(field.total(), 4.0);
  EXPECT_EQ(field.sparse().size(), 2u);
}

TEST(CostFieldTest, DepositConservesMassAndFollowsStartAtoms) {
  const Box box = Box::cubic(12.0);
  const CellGrid grid = CellGrid::with_dims(box, {3, 3, 3});
  // Two atoms in cell (0,0,0), one in cell (2,2,2).
  const std::vector<Vec3> pos{
      {1.0, 1.0, 1.0}, {3.0, 3.0, 3.0}, {9.0, 9.0, 9.0}};
  const std::vector<int> type{0, 0, 0};
  const HaloSpec halo{{1, 1, 1}, {1, 1, 1}};
  const CellDomain dom = make_serial_domain(grid, halo, pos, type);

  std::vector<std::uint64_t> cell_cost(
      static_cast<std::size_t>(grid.dims().volume()), 0);
  auto cell = [&](int x, int y, int z) {
    return static_cast<std::size_t>((z * 3 + y) * 3 + x);
  };
  cell_cost[cell(0, 0, 0)] = 10;  // split between the two start atoms
  cell_cost[cell(2, 2, 2)] = 6;   // all on the single atom
  cell_cost[cell(1, 1, 1)] = 4;   // no atoms: cell-center fallback

  CostField field(box, CostField::recommend_res({grid.dims()}));
  field.deposit(dom, cell_cost);
  EXPECT_DOUBLE_EQ(field.total(), 20.0);

  // The two atoms of cell (0,0,0) got 5 each at their own fine bins.
  EXPECT_DOUBLE_EQ(field.values()[static_cast<std::size_t>(
                       field.bin_of({1.0, 1.0, 1.0}))],
                   5.0);
  EXPECT_DOUBLE_EQ(field.values()[static_cast<std::size_t>(
                       field.bin_of({3.0, 3.0, 3.0}))],
                   5.0);
  EXPECT_DOUBLE_EQ(field.values()[static_cast<std::size_t>(
                       field.bin_of({9.0, 9.0, 9.0}))],
                   6.0);
  // Empty-cell mass sits at the cell's center (6, 6, 6).
  EXPECT_DOUBLE_EQ(field.values()[static_cast<std::size_t>(
                       field.bin_of({6.0, 6.0, 6.0}))],
                   4.0);
}

TEST(CostFieldTest, DepositRejectsMismatchedCostVector) {
  const Box box = Box::cubic(12.0);
  const CellGrid grid = CellGrid::with_dims(box, {3, 3, 3});
  const std::vector<Vec3> pos{{1.0, 1.0, 1.0}};
  const std::vector<int> type{0};
  const CellDomain dom =
      make_serial_domain(grid, HaloSpec{{1, 1, 1}, {1, 1, 1}}, pos, type);
  CostField field(box, {6, 6, 6});
  std::vector<std::uint64_t> wrong_size(5, 1);
  EXPECT_THROW(field.deposit(dom, wrong_size), Error);
}

}  // namespace
}  // namespace scmd
