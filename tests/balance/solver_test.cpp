// Cut solver: exact axis DP, halo-feasibility width limits, and the
// factorization sweep that picks the process-grid shape.

#include "balance/solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace scmd {
namespace {

std::vector<double> uniform_field(const Int3& res, double v) {
  return std::vector<double>(static_cast<std::size_t>(res.volume()), v);
}

AxisWidthLimits unit_limits(int res) {
  AxisWidthLimits lim;
  lim.at_lo.assign(static_cast<std::size_t>(res) + 1, 1);
  lim.at_hi.assign(static_cast<std::size_t>(res) + 1, 1);
  return lim;
}

TEST(SolverTest, EvaluateCutsUniformFieldIsPerfectlyBalanced) {
  const Int3 res{4, 4, 4};
  const std::array<std::vector<int>, 3> cuts{
      std::vector<int>{0, 2, 4}, std::vector<int>{0, 2, 4},
      std::vector<int>{0, 4}};
  EXPECT_DOUBLE_EQ(evaluate_cuts(uniform_field(res, 1.0), res, cuts), 1.0);
}

TEST(SolverTest, EvaluateCutsSeesSkew) {
  const Int3 res{4, 1, 1};
  std::vector<double> cost{3.0, 1.0, 1.0, 1.0};
  const std::array<std::vector<int>, 3> cuts{
      std::vector<int>{0, 2, 4}, std::vector<int>{0, 1},
      std::vector<int>{0, 1}};
  // Parts hold 4 and 2; mean 3 -> ratio 4/3.
  EXPECT_DOUBLE_EQ(evaluate_cuts(cost, res, cuts), 4.0 / 3.0);
}

TEST(SolverTest, SolveAxisSplitsUniformCostEqually) {
  std::vector<std::vector<double>> M(8, std::vector<double>(1, 1.0));
  const std::vector<int> cuts = solve_axis(M, 4, unit_limits(8));
  EXPECT_EQ(cuts, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(SolverTest, SolveAxisMovesCutsTowardTheDenseEnd) {
  // Slab costs 4,4,1,1,1,1,1,1.  Cutting at 2 gives parts 8 and 6
  // (max 8); any other cut is worse (cut 1 -> max 10, cut 3 -> max 9),
  // so the DP must place the cut right after the dense slabs.
  std::vector<std::vector<double>> M(8, std::vector<double>(1, 1.0));
  M[0][0] = 4.0;
  M[1][0] = 4.0;
  const std::vector<int> cuts = solve_axis(M, 2, unit_limits(8));
  EXPECT_EQ(cuts, (std::vector<int>{0, 2, 8}));
}

TEST(SolverTest, SolveAxisReturnsEmptyWhenInfeasible) {
  std::vector<std::vector<double>> M(3, std::vector<double>(1, 1.0));
  EXPECT_TRUE(solve_axis(M, 4, unit_limits(3)).empty());

  // Width limits that cannot be met: 4 parts x min width 3 > 8 slabs.
  std::vector<std::vector<double>> M8(8, std::vector<double>(1, 1.0));
  AxisWidthLimits wide = unit_limits(8);
  for (auto& v : wide.at_lo) v = 3;
  EXPECT_TRUE(solve_axis(M8, 4, wide).empty());
  EXPECT_FALSE(solve_axis(M8, 2, wide).empty());
}

TEST(SolverTest, SolveAxisRespectsPerPositionWidthLimits) {
  std::vector<std::vector<double>> M(8, std::vector<double>(1, 1.0));
  AxisWidthLimits lim = unit_limits(8);
  // A part starting at cut 2 must be at least 4 wide; the equal split
  // {0,2,4,6,8} violates that, so the DP must route around it.
  lim.at_lo[2] = 4;
  const std::vector<int> cuts = solve_axis(M, 4, lim);
  ASSERT_EQ(cuts.size(), 5u);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const int a = cuts[i], c = cuts[i + 1];
    EXPECT_GE(c - a, lim.at_lo[static_cast<std::size_t>(a)]) << "part " << i;
    EXPECT_GE(c - a, lim.at_hi[static_cast<std::size_t>(c)]) << "part " << i;
  }
}

TEST(SolverTest, WidthLimitsMatchTheStraddleFormula) {
  // One grid of 12 cells on a 48-lattice (s = 4), symmetric 1-cell halo.
  GridReach g;
  g.dims = {12, 12, 12};
  g.halo_lo = {1, 1, 1};
  g.halo_hi = {1, 1, 1};
  const auto limits = width_limits_for({48, 48, 48}, {g});
  for (int a = 0; a < 3; ++a) {
    const AxisWidthLimits& lim = limits[static_cast<std::size_t>(a)];
    ASSERT_EQ(lim.at_lo.size(), 49u);
    // On a cell boundary the upward reach is exactly the halo (4 fine
    // units); mid-cell it grows by the straddle remainder.
    EXPECT_EQ(lim.at_lo[0], 4);
    EXPECT_EQ(lim.at_lo[4], 4);
    EXPECT_EQ(lim.at_lo[5], 3 + 4);
    EXPECT_EQ(lim.at_lo[7], 1 + 4);
    EXPECT_EQ(lim.at_hi[0], 4);
    EXPECT_EQ(lim.at_hi[5], 1 + 4);
    EXPECT_EQ(lim.at_hi[7], 3 + 4);
  }
  // The fine lattice must subdivide every grid.
  GridReach bad = g;
  bad.dims = {7, 12, 12};
  EXPECT_THROW(width_limits_for({48, 48, 48}, {bad}), Error);
}

TEST(SolverTest, SolveBalancedCutsFlattensATwoPhaseField) {
  // Dense lower half along x: density 4 vs 1.
  const Int3 res{16, 4, 4};
  std::vector<double> cost(static_cast<std::size_t>(res.volume()));
  for (int z = 0; z < res.z; ++z)
    for (int y = 0; y < res.y; ++y)
      for (int x = 0; x < res.x; ++x)
        cost[static_cast<std::size_t>((z * res.y + y) * res.x + x)] =
            x < 8 ? 4.0 : 1.0;

  std::array<AxisWidthLimits, 3> limits{unit_limits(16), unit_limits(4),
                                        unit_limits(4)};
  const BalanceSolution sol = solve_balanced_cuts(cost, res, 8, limits);
  ASSERT_GT(sol.predicted_ratio, 0.0);
  EXPECT_LT(sol.predicted_ratio, 1.05);
  EXPECT_EQ(sol.pgrid_dims.volume(), 8);
  EXPECT_DOUBLE_EQ(evaluate_cuts(cost, res, sol.cuts), sol.predicted_ratio);

  // A uniform 2x2x2 split of the same field is 1.6x imbalanced; the
  // solver must beat it decisively.
  const std::array<std::vector<int>, 3> uniform_cuts{
      std::vector<int>{0, 8, 16}, std::vector<int>{0, 2, 4},
      std::vector<int>{0, 2, 4}};
  EXPECT_LT(sol.predicted_ratio,
            evaluate_cuts(cost, res, uniform_cuts) / 1.4);
}

TEST(SolverTest, SolveBalancedCutsSkipsOverlongFactorizations) {
  // 64 ranks on a 16-lattice: 64x1x1 and 32x2x1 are infeasible and must
  // be skipped, not fatal; 4x4x4 remains.
  const Int3 res{16, 16, 16};
  std::array<AxisWidthLimits, 3> limits{unit_limits(16), unit_limits(16),
                                        unit_limits(16)};
  const BalanceSolution sol =
      solve_balanced_cuts(uniform_field(res, 1.0), res, 64, limits);
  ASSERT_GT(sol.predicted_ratio, 0.0);
  EXPECT_DOUBLE_EQ(sol.predicted_ratio, 1.0);
}

}  // namespace
}  // namespace scmd
