#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/checkpoint.hpp"
#include "io/xyz.hpp"
#include "md/builders.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

ParticleSystem sample_system() {
  Rng rng(160);
  ParticleSystem sys(Box({8.0, 9.0, 10.0}), {28.0855, 15.9994});
  for (int i = 0; i < 50; ++i) {
    sys.add_atom({rng.uniform(0, 8), rng.uniform(0, 9), rng.uniform(0, 10)},
                 {rng.normal(), rng.normal(), rng.normal()}, i % 2);
    sys.forces()[i] = {rng.normal(), rng.normal(), rng.normal()};
  }
  return sys;
}

TEST(CheckpointTest, RoundTripsExactly) {
  const ParticleSystem original = sample_system();
  const std::string path = "/tmp/scmd_ckpt_test.bin";
  save_checkpoint(original, path);
  const ParticleSystem loaded = load_checkpoint(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.num_atoms(), original.num_atoms());
  ASSERT_EQ(loaded.num_types(), original.num_types());
  EXPECT_EQ(loaded.box(), original.box());
  for (int t = 0; t < original.num_types(); ++t)
    EXPECT_EQ(loaded.mass_of_type(t), original.mass_of_type(t));
  for (int i = 0; i < original.num_atoms(); ++i) {
    EXPECT_EQ(loaded.positions()[i], original.positions()[i]) << i;
    EXPECT_EQ(loaded.velocities()[i], original.velocities()[i]) << i;
    EXPECT_EQ(loaded.forces()[i], original.forces()[i]) << i;
    EXPECT_EQ(loaded.types()[i], original.types()[i]) << i;
  }
}

TEST(CheckpointTest, RejectsMissingFile) {
  EXPECT_THROW(load_checkpoint("/tmp/scmd_no_such_ckpt.bin"), Error);
}

TEST(CheckpointTest, RejectsGarbage) {
  const std::string path = "/tmp/scmd_ckpt_garbage.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a checkpoint at all, not even close.............";
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsTruncation) {
  const ParticleSystem original = sample_system();
  const std::string path = "/tmp/scmd_ckpt_trunc.bin";
  save_checkpoint(original, path);
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string blob = buf.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(XyzWriterTest, WritesFramesWithLattice) {
  Rng rng(161);
  const ParticleSystem sys = make_silica(648, 2.2, 300.0, rng);
  const std::string path = "/tmp/scmd_xyz_test.xyz";
  {
    XyzWriter writer(path, {"Si", "O"});
    writer.write_frame(sys, "step=0");
    writer.write_frame(sys, "step=1");
    EXPECT_EQ(writer.frames_written(), 2);
  }
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "648");
  std::getline(f, line);
  EXPECT_NE(line.find("Lattice="), std::string::npos);
  EXPECT_NE(line.find("step=0"), std::string::npos);
  std::getline(f, line);
  EXPECT_TRUE(line.rfind("Si ", 0) == 0 || line.rfind("O ", 0) == 0);
  // Count total lines: 2 * (648 + 2).
  int lines = 3;
  while (std::getline(f, line)) ++lines;
  EXPECT_EQ(lines, 2 * (648 + 2));
  std::remove(path.c_str());
}

TEST(XyzWriterTest, RejectsUnknownSpecies) {
  ParticleSystem sys(Box::cubic(5.0), {1.0, 1.0});
  sys.add_atom({1, 1, 1}, {}, 1);
  const std::string path = "/tmp/scmd_xyz_badspecies.xyz";
  XyzWriter writer(path, {"Si"});  // only one symbol for two types
  EXPECT_THROW(writer.write_frame(sys), Error);
  std::remove(path.c_str());
}

TEST(XyzWriterTest, RejectsUnwritablePath) {
  EXPECT_THROW(XyzWriter("/nonexistent-dir/foo.xyz", {"X"}), Error);
}

}  // namespace
}  // namespace scmd
