#include "cell/grid.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(CellGridTest, DimsFromCutoff) {
  const CellGrid g(Box::cubic(10.0), 2.5);
  EXPECT_EQ(g.dims(), (Int3{4, 4, 4}));
  EXPECT_DOUBLE_EQ(g.cell_lengths().x, 2.5);
  EXPECT_EQ(g.num_cells(), 64);
}

TEST(CellGridTest, CellsAtLeastCutoff) {
  // floor() can shrink the count but never the cell size below cutoff.
  const CellGrid g(Box::cubic(10.0), 3.0);
  EXPECT_EQ(g.dims(), (Int3{3, 3, 3}));
  EXPECT_GE(g.min_cell_length(), 3.0);
}

TEST(CellGridTest, TinyBoxGetsOneCell) {
  const CellGrid g(Box::cubic(1.0), 2.5);
  EXPECT_EQ(g.dims(), (Int3{1, 1, 1}));
}

TEST(CellGridTest, WithDimsExact) {
  const CellGrid g = CellGrid::with_dims(Box({6.0, 8.0, 10.0}), {3, 4, 5});
  EXPECT_DOUBLE_EQ(g.cell_lengths().x, 2.0);
  EXPECT_DOUBLE_EQ(g.cell_lengths().y, 2.0);
  EXPECT_DOUBLE_EQ(g.cell_lengths().z, 2.0);
}

TEST(CellGridTest, LinearIndexRoundTrip) {
  const CellGrid g = CellGrid::with_dims(Box::cubic(1.0), {3, 4, 5});
  for (long long i = 0; i < g.num_cells(); ++i) {
    EXPECT_EQ(g.linear_index(g.coord_of(i)), i);
  }
}

TEST(CellGridTest, CoordForPositionInRange) {
  const CellGrid g(Box::cubic(9.0), 3.0);
  EXPECT_EQ(g.coord_for_position({0.5, 4.0, 8.9}), (Int3{0, 1, 2}));
  // Positions outside the box wrap first.
  EXPECT_EQ(g.coord_for_position({9.5, -1.0, 0.0}), (Int3{0, 2, 0}));
}

TEST(CellGridTest, TopEdgeClamps) {
  const CellGrid g(Box::cubic(9.0), 3.0);
  const Int3 q = g.coord_for_position({9.0 - 1e-15, 0.0, 0.0});
  EXPECT_LT(q.x, 3);
}

TEST(CellGridTest, WrapCoord) {
  const CellGrid g = CellGrid::with_dims(Box::cubic(1.0), {4, 4, 4});
  EXPECT_EQ(g.wrap_coord({-1, 4, 7}), (Int3{3, 0, 3}));
}

TEST(CellGridTest, ImageShiftMatchesWrapDistance) {
  const CellGrid g = CellGrid::with_dims(Box::cubic(12.0), {4, 4, 4});
  // Cell (-1, 4, 0): one image below in x, one above in y.
  const Vec3 s = g.image_shift({-1, 4, 0});
  EXPECT_DOUBLE_EQ(s.x, -12.0);
  EXPECT_DOUBLE_EQ(s.y, 12.0);
  EXPECT_DOUBLE_EQ(s.z, 0.0);
}

TEST(CellGridTest, RandomPositionsLandInTheirCell) {
  const CellGrid g(Box({7.0, 9.0, 11.0}), 2.0);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Vec3 r{rng.uniform(0, 7), rng.uniform(0, 9), rng.uniform(0, 11)};
    const Int3 q = g.coord_for_position(r);
    for (int a = 0; a < 3; ++a) {
      const double lo = q[a] * g.cell_lengths()[a];
      const double hi = lo + g.cell_lengths()[a];
      EXPECT_GE(r[a], lo - 1e-9);
      EXPECT_LT(r[a], hi + 1e-9);
    }
  }
}

TEST(CellGridTest, RejectsBadArguments) {
  EXPECT_THROW(CellGrid(Box::cubic(1.0), 0.0), Error);
  EXPECT_THROW(CellGrid::with_dims(Box::cubic(1.0), {0, 1, 1}), Error);
}

}  // namespace
}  // namespace scmd
