#include "cell/domain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pattern/generate.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

std::vector<Vec3> random_positions(int n, const Box& box, Rng& rng) {
  std::vector<Vec3> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pos.push_back({rng.uniform(0, box.length(0)),
                   rng.uniform(0, box.length(1)),
                   rng.uniform(0, box.length(2))});
  }
  return pos;
}

TEST(HaloForTest, ScPatternNeedsUpperHaloOnly) {
  const HaloSpec h = halo_for(make_sc(3));
  EXPECT_EQ(h.lo, (Int3{0, 0, 0}));
  EXPECT_EQ(h.hi, (Int3{2, 2, 2}));
}

TEST(HaloForTest, FsPatternNeedsBothSides) {
  const HaloSpec h = halo_for(generate_fs(2));
  EXPECT_EQ(h.lo, (Int3{1, 1, 1}));
  EXPECT_EQ(h.hi, (Int3{1, 1, 1}));
}

TEST(HaloForTest, MergeTakesMaxima) {
  const HaloSpec m =
      merge({{0, 0, 0}, {1, 1, 1}}, {{2, 0, 0}, {0, 3, 0}});
  EXPECT_EQ(m.lo, (Int3{2, 0, 0}));
  EXPECT_EQ(m.hi, (Int3{1, 3, 1}));
}

TEST(CellDomainTest, GeometryBasics) {
  const CellGrid g = CellGrid::with_dims(Box::cubic(12.0), {4, 4, 4});
  const CellDomain d(g, {0, 0, 0}, {2, 2, 2}, {{0, 0, 0}, {1, 1, 1}});
  EXPECT_EQ(d.ext(), (Int3{3, 3, 3}));
  EXPECT_EQ(d.num_local_cells(), 27);
  EXPECT_TRUE(d.is_owned_cell({0, 0, 0}));
  EXPECT_TRUE(d.is_owned_cell({1, 1, 1}));
  EXPECT_FALSE(d.is_owned_cell({2, 0, 0}));
  EXPECT_EQ(d.global_coord({2, 2, 2}), (Int3{2, 2, 2}));
}

TEST(CellDomainTest, CellIndexRoundTrip) {
  const CellGrid g = CellGrid::with_dims(Box::cubic(12.0), {4, 4, 4});
  const CellDomain d(g, {0, 0, 0}, {2, 3, 4}, {{1, 0, 1}, {1, 2, 0}});
  for (long long i = 0; i < d.num_local_cells(); ++i) {
    EXPECT_EQ(d.cell_index(d.cell_coord(i)), i);
  }
}

TEST(CellDomainTest, BuildBinsAtomsByCell) {
  const CellGrid g = CellGrid::with_dims(Box::cubic(4.0), {4, 4, 4});
  CellDomain d(g, {0, 0, 0}, {4, 4, 4}, {{0, 0, 0}, {0, 0, 0}});
  std::vector<DomainAtom> atoms;
  // Three atoms in cell (1,2,3), one in (0,0,0).
  for (int k = 0; k < 3; ++k) {
    atoms.push_back({{1.5, 2.5, 3.5}, 0, k, k, {1, 2, 3}});
  }
  atoms.push_back({{0.5, 0.5, 0.5}, 1, 3, 3, {0, 0, 0}});
  d.build(atoms);
  EXPECT_EQ(d.num_atoms(), 4);
  EXPECT_EQ(d.num_owned_atoms(), 4);
  const auto [a0, a1] = d.cell_range(d.cell_index({1, 2, 3}));
  EXPECT_EQ(a1 - a0, 3);
  const auto [b0, b1] = d.cell_range(d.cell_index({0, 0, 0}));
  EXPECT_EQ(b1 - b0, 1);
  EXPECT_EQ(d.types()[static_cast<std::size_t>(b0)], 1);
}

TEST(CellDomainTest, RejectsOutOfLatticeAtoms) {
  const CellGrid g = CellGrid::with_dims(Box::cubic(4.0), {4, 4, 4});
  CellDomain d(g, {0, 0, 0}, {2, 2, 2}, {{0, 0, 0}, {0, 0, 0}});
  std::vector<DomainAtom> atoms{{{0, 0, 0}, 0, 0, 0, {3, 0, 0}}};
  EXPECT_THROW(d.build(atoms), Error);
}

TEST(SerialDomainTest, OwnedAtomCountMatches) {
  const Box box = Box::cubic(12.0);
  const CellGrid g(box, 3.0);
  Rng rng(7);
  const auto pos = random_positions(100, box, rng);
  const std::vector<int> type(100, 0);
  const CellDomain d =
      make_serial_domain(g, halo_for(make_sc(2)), pos, type);
  EXPECT_EQ(d.num_owned_atoms(), 100);
  EXPECT_GT(d.num_atoms(), 100);  // ghosts exist
}

TEST(SerialDomainTest, GhostPositionsAreShiftedImages) {
  const Box box = Box::cubic(12.0);
  const CellGrid g(box, 3.0);  // 4x4x4 cells
  Rng rng(8);
  const auto pos = random_positions(50, box, rng);
  const std::vector<int> type(50, 0);
  const CellDomain d =
      make_serial_domain(g, {{1, 1, 1}, {1, 1, 1}}, pos, type);
  const auto dpos = d.positions();
  const auto gids = d.gids();
  for (int a = 0; a < d.num_atoms(); ++a) {
    const Vec3 orig = box.wrap(pos[static_cast<std::size_t>(gids[a])]);
    const Vec3 diff = dpos[a] - orig;
    for (int ax = 0; ax < 3; ++ax) {
      const double r = diff[ax] / box.length(ax);
      EXPECT_NEAR(r, std::round(r), 1e-9);  // integer multiple of L
    }
  }
}

TEST(SerialDomainTest, GhostCellsMirrorWrappedCells) {
  const Box box = Box::cubic(9.0);
  const CellGrid g(box, 3.0);  // 3x3x3
  Rng rng(9);
  const auto pos = random_positions(60, box, rng);
  const std::vector<int> type(60, 0);
  const HaloSpec halo{{1, 1, 1}, {1, 1, 1}};
  const CellDomain d = make_serial_domain(g, halo, pos, type);
  // Each ghost cell holds exactly the same number of atoms as the global
  // cell it mirrors.
  const Int3 ext = d.ext();
  for (int z = 0; z < ext.z; ++z) {
    for (int y = 0; y < ext.y; ++y) {
      for (int x = 0; x < ext.x; ++x) {
        const Int3 local{x, y, z};
        const Int3 global = d.global_coord(local);
        const Int3 wrapped = g.wrap_coord(global);
        const Int3 primary_local = d.local_coord(wrapped);
        const auto [a0, a1] = d.cell_range(d.cell_index(local));
        const auto [b0, b1] = d.cell_range(d.cell_index(primary_local));
        EXPECT_EQ(a1 - a0, b1 - b0);
      }
    }
  }
}

TEST(SerialDomainTest, HaloBiggerThanGridRejected) {
  const Box box = Box::cubic(6.0);
  const CellGrid g(box, 3.0);  // 2x2x2
  const std::vector<Vec3> pos{{1, 1, 1}};
  const std::vector<int> type{0};
  EXPECT_THROW(
      make_serial_domain(g, {{3, 3, 3}, {3, 3, 3}}, pos, type), Error);
}

TEST(BrickDomainTest, PartitionCoversAllAtomsExactlyOnce) {
  const Box box = Box::cubic(12.0);
  const CellGrid g(box, 3.0);  // 4x4x4
  Rng rng(10);
  const auto pos = random_positions(200, box, rng);
  const std::vector<int> type(200, 0);
  const GlobalBins bins = bin_globally(g, pos);
  int total_owned = 0;
  for (int bx = 0; bx < 2; ++bx) {
    for (int by = 0; by < 2; ++by) {
      for (int bz = 0; bz < 2; ++bz) {
        const CellDomain d =
            make_brick_domain(bins, pos, type, {bx * 2, by * 2, bz * 2},
                              {2, 2, 2}, {{0, 0, 0}, {1, 1, 1}});
        total_owned += d.num_owned_atoms();
      }
    }
  }
  EXPECT_EQ(total_owned, 200);
}

}  // namespace
}  // namespace scmd
