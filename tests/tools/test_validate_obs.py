#!/usr/bin/env python3
"""Negative-case tests for tools/validate_obs.py — the CI gate is
itself gated.  Every check the validator enforces gets one artifact
that violates it; a validator that stops failing these stops guarding
CI.  Stdlib unittest only (no third-party test deps).

Run directly (python3 tests/tools/test_validate_obs.py) or through
ctest (tools_validate_obs_selftest).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, os.pardir, "tools")
VALIDATOR = os.path.join(TOOLS, "validate_obs.py")


def metrics_record(step, metrics=None, hist=None, attrs=None):
    rec = {"step": step, "metrics": metrics if metrics is not None else
           {"energy.potential": -1.0}}
    if hist:
        rec["hist"] = hist
    if attrs:
        rec["attrs"] = attrs
    return rec


def span(name, ts, dur, tid=0):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur, "pid": 1,
            "tid": tid}


def comm_metrics(bytes_sent, msgs=4):
    return {"comm.transport.messages_sent": msgs,
            "comm.transport.bytes_sent": bytes_sent,
            "comm.transport.messages_recv": msgs,
            "comm.transport.bytes_recv": bytes_sent,
            "comm.transport.recv_stall_s": 0.0,
            "comm.transport.max_mailbox_depth": 2}


def merged_metrics(bytes_sent):
    m = comm_metrics(bytes_sent)
    m.update({"imbalance.search.max": 100.0, "imbalance.search.avg": 90.0,
              "imbalance.search.ratio": 1.1})
    return m


def phase_hist():
    return {"phase_hist.step": {"lo": -7.0, "hi": 2.0, "count": 1,
                                "buckets": [0, 1, 0]}}


class ValidatorRunner(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write_metrics(self, records):
        path = os.path.join(self.dir.name, "m.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            for r in records:
                f.write(json.dumps(r) + "\n")
        return path

    def write_trace(self, events):
        path = os.path.join(self.dir.name, "t.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"traceEvents": events}, f)
        return path

    def run_validator(self, *args):
        return subprocess.run([sys.executable, VALIDATOR, *args],
                              capture_output=True, text=True, check=False)

    def assert_fails(self, message_part, *args):
        proc = self.run_validator(*args)
        self.assertNotEqual(proc.returncode, 0,
                            f"expected failure, got: {proc.stdout}")
        self.assertIn(message_part, proc.stderr)

    def assert_passes(self, *args):
        proc = self.run_validator(*args)
        self.assertEqual(proc.returncode, 0, proc.stderr)


class MetricsChecks(ValidatorRunner):
    def test_valid_file_passes(self):
        path = self.write_metrics([metrics_record(0), metrics_record(1)])
        self.assert_passes("--metrics", path, "--min-steps", "2")

    def test_invalid_json_fails(self):
        path = os.path.join(self.dir.name, "m.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"step": 0, "metrics": {}}\nnot json\n')
        self.assert_fails("invalid JSON", "--metrics", path)

    def test_missing_step_fails(self):
        path = self.write_metrics([{"metrics": {}}])
        self.assert_fails("missing integer 'step'", "--metrics", path)

    def test_missing_required_metric_fails(self):
        path = self.write_metrics([metrics_record(0)])
        self.assert_fails("required metric", "--metrics", path,
                          "--require-metrics", "no.such.metric")

    def test_non_monotonic_steps_fail(self):
        path = self.write_metrics([metrics_record(3), metrics_record(1)])
        self.assert_fails("steps not non-decreasing", "--metrics", path)

    def test_too_few_records_fail(self):
        path = self.write_metrics([metrics_record(0)])
        self.assert_fails("expected >= 5", "--metrics", path,
                          "--min-steps", "5")

    def test_hist_count_mismatch_fails(self):
        bad = {"phase_hist.step": {"lo": -7.0, "hi": 2.0, "count": 5,
                                   "buckets": [0, 1, 0]}}
        path = self.write_metrics([metrics_record(0, hist=bad)])
        self.assert_fails("counts don't sum", "--metrics", path)


class CommChecks(ValidatorRunner):
    def test_delta_series_passes(self):
        recs = [metrics_record(s, metrics=comm_metrics(b))
                for s, b in enumerate([900, 120, 140, 130])]
        self.assert_passes("--metrics", self.write_metrics(recs),
                           "--expect-comm")

    def test_missing_comm_gauges_fail(self):
        path = self.write_metrics([metrics_record(0)])
        self.assert_fails("required metric", "--metrics", path,
                          "--expect-comm")

    def test_no_traffic_fails(self):
        recs = [metrics_record(0, metrics=comm_metrics(0, msgs=0))]
        self.assert_fails("no record observed transport traffic",
                          "--metrics", self.write_metrics(recs),
                          "--expect-comm")

    def test_cumulative_constants_fail(self):
        # The old bug: every record carries the same run-wide totals.
        recs = [metrics_record(s, metrics=comm_metrics(5000))
                for s in range(4)]
        self.assert_fails("cumulative constants", "--metrics",
                          self.write_metrics(recs), "--expect-comm")


def serve_metrics(submitted=1, done=1, failed=0, cancelled=0, active=0,
                  queued=0, busy=0, free=3, dead=0, total=3):
    return {"serve.queue_depth": queued, "serve.jobs_active": active,
            "serve.jobs_submitted": submitted, "serve.jobs_done": done,
            "serve.jobs_failed": failed, "serve.jobs_cancelled": cancelled,
            "serve.ranks_total": total, "serve.ranks_busy": busy,
            "serve.ranks_free": free, "serve.ranks_dead": dead}


class ServeChecks(ValidatorRunner):
    def test_daemon_lifecycle_passes(self):
        recs = [metrics_record(0, metrics=serve_metrics(
                    submitted=1, done=0, active=1, busy=2, free=1)),
                metrics_record(1, metrics=serve_metrics())]
        self.assert_passes("--metrics", self.write_metrics(recs),
                           "--expect-serve")

    def test_missing_serve_gauges_fail(self):
        self.assert_fails("required metric", "--metrics",
                          self.write_metrics([metrics_record(0)]),
                          "--expect-serve")

    def test_never_busy_fails(self):
        recs = [metrics_record(0, metrics=serve_metrics())]
        self.assert_fails("no record observed a busy rank", "--metrics",
                          self.write_metrics(recs), "--expect-serve")

    def test_unbalanced_job_ledger_fails(self):
        # Two submissions but only one ever reached a terminal state and
        # none are active or queued: a job leaked.
        recs = [metrics_record(0, metrics=serve_metrics(busy=2, free=1)),
                metrics_record(1, metrics=serve_metrics(submitted=2))]
        self.assert_fails("job ledger does not balance", "--metrics",
                          self.write_metrics(recs), "--expect-serve")

    def test_unbalanced_rank_ledger_fails(self):
        recs = [metrics_record(0, metrics=serve_metrics(busy=2, free=1)),
                metrics_record(1, metrics=serve_metrics(free=2))]
        self.assert_fails("rank ledger does not balance", "--metrics",
                          self.write_metrics(recs), "--expect-serve")


class TraceChecks(ValidatorRunner):
    def test_nested_spans_pass(self):
        events = [span("step", 0, 100), span("force", 10, 50)]
        self.assert_passes("--trace", self.write_trace(events))

    def test_partial_overlap_fails(self):
        events = [span("step", 0, 100), span("force", 50, 100)]
        self.assert_fails("partially overlaps", "--trace",
                          self.write_trace(events))

    def test_negative_duration_fails(self):
        self.assert_fails("negative duration", "--trace",
                          self.write_trace([span("step", 0, -1)]))

    def test_missing_trace_events_fails(self):
        path = os.path.join(self.dir.name, "t.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"spans": []}, f)
        self.assert_fails("missing 'traceEvents'", "--trace", path)


class MergedChecks(ValidatorRunner):
    def merged_artifacts(self, rank1_shift=0.0):
        recs = [metrics_record(s, metrics=merged_metrics(b),
                               hist=phase_hist())
                for s, b in enumerate([900, 120, 140])]
        events = []
        for k in range(3):
            events.append(span("step", 1000 * k, 800, tid=0))
            events.append(span("step", 1000 * k + rank1_shift, 800, tid=1))
        return self.write_metrics(recs), self.write_trace(events)

    def test_aligned_two_lane_trace_passes(self):
        m, t = self.merged_artifacts(rank1_shift=100.0)
        self.assert_passes("--metrics", m, "--trace", t,
                           "--expect-merged", "2")

    def test_wrong_lane_count_fails(self):
        m, t = self.merged_artifacts()
        self.assert_fails("lanes (tids)", "--metrics", m, "--trace", t,
                          "--expect-merged", "4")

    def test_misaligned_clocks_fail(self):
        # Rank 1's spans land 900 us late: no overlap within 50 us slack
        # -> the clock mapping was not applied.
        m, t = self.merged_artifacts(rank1_shift=900.0)
        self.assert_fails("not clock-aligned", "--metrics", m, "--trace",
                          t, "--expect-merged", "2",
                          "--merge-slack-us", "50")

    def test_lane_without_step_spans_fails(self):
        recs = [metrics_record(0, metrics=merged_metrics(10),
                               hist=phase_hist())]
        m = self.write_metrics(recs)
        t = self.write_trace([span("step", 0, 100, tid=0),
                              span("force", 0, 50, tid=1)])
        self.assert_fails("has no 'step' span", "--metrics", m,
                          "--trace", t, "--expect-merged", "2")

    def test_missing_phase_hist_fails(self):
        recs = [metrics_record(s, metrics=merged_metrics(b))
                for s, b in enumerate([900, 120, 140])]
        m = self.write_metrics(recs)
        t = self.write_trace([span("step", 0, 100, tid=0),
                              span("step", 20, 100, tid=1)])
        self.assert_fails("no phase_hist.* histogram", "--metrics", m,
                          "--trace", t, "--expect-merged", "2")

    def test_missing_imbalance_fails(self):
        recs = [metrics_record(0, metrics=comm_metrics(10),
                               hist=phase_hist())]
        self.assert_fails("required metric", "--metrics",
                          self.write_metrics(recs), "--expect-merged", "2")


if __name__ == "__main__":
    unittest.main()
