#!/usr/bin/env python3
"""Self-test for tools/compare_checkpoints.py — the parity gate is
itself gated.  Synthesizes v1 and v2 checkpoints byte-for-byte (the
same layouts src/io and src/ckpt write), then checks the comparator's
exit-code contract: 0 = match, 1 = mismatch, 2 = malformed file.
Stdlib unittest only (no third-party test deps).

Run directly (python3 tests/tools/test_compare_checkpoints.py) or
through ctest (tools_compare_checkpoints_selftest).
"""

import os
import struct
import subprocess
import sys
import tempfile
import unittest
import zlib

TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, os.pardir, "tools")
COMPARATOR = os.path.join(TOOLS, "compare_checkpoints.py")

MAGIC_V1 = 0x53434D445F434B31
MAGIC_V2 = 0x53434D445F434B32


def fourcc(tag):
    return int.from_bytes(tag.encode("ascii"), "little")


def atoms_fixture(shift=0.0):
    """Three atoms; `shift` perturbs one position component."""
    return [
        ((0.5 + shift, 1.0, 1.5), (0.25, -0.5, 0.75), (1.0, 2.0, 3.0), 0),
        ((2.0, 2.5, 3.0), (-1.0, 0.0, 1.0), (-4.0, 5.0, -6.0), 1),
        ((3.5, 4.0, 4.5), (0.125, 0.25, -0.375), (7.0, -8.0, 9.0), 0),
    ]


BOX = (4.0, 5.0, 6.0)
MASSES = (1.5, 2.5)


def encode_v1(atoms):
    out = struct.pack("<QI", MAGIC_V1, 1)
    out += struct.pack("<3d", *BOX)
    out += struct.pack("<i", len(MASSES))
    for m in MASSES:
        out += struct.pack("<d", m)
    out += struct.pack("<q", len(atoms))
    for pos, vel, force, atype in atoms:
        out += struct.pack("<3d", *pos)
        out += struct.pack("<3d", *vel)
        out += struct.pack("<3d", *force)
        out += struct.pack("<i", atype)
    return out


def encode_v2(atoms, extra_sections=(), sim=None):
    sections = []
    sections.append((fourcc("BOXX"), struct.pack("<3d", *BOX)))
    sections.append((fourcc("MASS"),
                     struct.pack(f"<Q{len(MASSES)}d", len(MASSES), *MASSES)))
    atom_payload = struct.pack("<Q", len(atoms))
    for pos, vel, force, atype in atoms:
        atom_payload += struct.pack("<9d2i", *pos, *vel, *force, atype, 0)
    sections.append((fourcc("ATOM"), atom_payload))
    if sim is not None:
        sections.append((fourcc("SIMS"), struct.pack("<qqd", *sim)))
    sections.extend(extra_sections)

    out = struct.pack("<QII", MAGIC_V2, 2, len(sections))
    for sec_id, payload in sections:
        out += struct.pack("<IQI", sec_id, len(payload),
                           zlib.crc32(payload) & 0xFFFFFFFF)
        out += payload
    return out


class ComparatorTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, blob):
        path = os.path.join(self.tmp.name, name)
        with open(path, "wb") as f:
            f.write(blob)
        return path

    def run_compare(self, a, b, *flags):
        return subprocess.run(
            [sys.executable, COMPARATOR, a, b, *flags],
            capture_output=True, text=True)

    def test_identical_v2_match(self):
        a = self.write("a.ckpt", encode_v2(atoms_fixture()))
        b = self.write("b.ckpt", encode_v2(atoms_fixture()))
        result = self.run_compare(a, b)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_position_drift_fails_tolerance(self):
        a = self.write("a.ckpt", encode_v2(atoms_fixture()))
        b = self.write("b.ckpt", encode_v2(atoms_fixture(shift=1e-4)))
        result = self.run_compare(a, b, "--pos-tol=1e-8")
        self.assertEqual(result.returncode, 1, result.stderr)
        self.assertIn("FAIL", result.stderr)

    def test_drift_inside_tolerance_passes(self):
        a = self.write("a.ckpt", encode_v2(atoms_fixture()))
        b = self.write("b.ckpt", encode_v2(atoms_fixture(shift=1e-10)))
        result = self.run_compare(a, b, "--pos-tol=1e-8")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_v1_reads_and_matches_v2(self):
        a = self.write("a.ckpt", encode_v1(atoms_fixture()))
        b = self.write("b.ckpt", encode_v2(atoms_fixture()))
        result = self.run_compare(a, b)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("v1 vs v2", result.stdout)

    def test_crc_corruption_is_malformed(self):
        blob = bytearray(encode_v2(atoms_fixture()))
        blob[-3] ^= 0x01  # flip a payload bit; stored CRC now lies
        a = self.write("a.ckpt", bytes(blob))
        b = self.write("b.ckpt", encode_v2(atoms_fixture()))
        result = self.run_compare(a, b)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("CRC", result.stderr)

    def test_truncation_is_malformed(self):
        blob = encode_v2(atoms_fixture())
        a = self.write("a.ckpt", blob[: len(blob) // 2])
        b = self.write("b.ckpt", blob)
        result = self.run_compare(a, b)
        self.assertEqual(result.returncode, 2, result.stderr)

    def test_bad_magic_is_malformed(self):
        a = self.write("a.ckpt", b"not a checkpoint at all.........")
        b = self.write("b.ckpt", encode_v2(atoms_fixture()))
        result = self.run_compare(a, b)
        self.assertEqual(result.returncode, 2, result.stderr)

    def test_unknown_sections_are_ignored(self):
        extra = [(fourcc("ZZZZ"), b"future payload")]
        a = self.write("a.ckpt", encode_v2(atoms_fixture(),
                                           extra_sections=extra))
        b = self.write("b.ckpt", encode_v2(atoms_fixture()))
        result = self.run_compare(a, b)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_sections_flag_diffs_sim_state(self):
        a = self.write("a.ckpt", encode_v2(atoms_fixture(),
                                           sim=(10, 100, 0.5)))
        b = self.write("b.ckpt", encode_v2(atoms_fixture(),
                                           sim=(20, 100, 0.5)))
        # Without --sections the optional state is informational only.
        self.assertEqual(self.run_compare(a, b).returncode, 0)
        result = self.run_compare(a, b, "--sections")
        self.assertEqual(result.returncode, 1, result.stderr)
        self.assertIn("SIMS", result.stderr)

    def test_atom_count_mismatch_is_malformed(self):
        a = self.write("a.ckpt", encode_v2(atoms_fixture()))
        b = self.write("b.ckpt", encode_v2(atoms_fixture()[:2]))
        result = self.run_compare(a, b)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("atom count", result.stderr)


if __name__ == "__main__":
    unittest.main()
