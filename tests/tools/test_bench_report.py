#!/usr/bin/env python3
"""Tests for tools/bench_report.py: direction-aware regression math and
the --max-regress gate.  Stdlib unittest only."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, os.pardir, "tools")
REPORT = os.path.join(TOOLS, "bench_report.py")


def walltime_doc(ms, rate):
    return {"bench": "walltime", "atoms": 3000, "steps": 8,
            "variants": {"SC": {"ms_per_step": ms, "steps_per_sec": rate}}}


class BenchReportTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_report(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, REPORT, "--baseline", baseline,
             "--current", current, *extra],
            capture_output=True, text=True, check=False)

    def test_identical_runs_pass(self):
        b = self.write("b.json", walltime_doc(40.0, 25.0))
        c = self.write("c.json", walltime_doc(40.0, 25.0))
        proc = self.run_report(b, c, "--max-regress", "5")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("bench_report: OK", proc.stdout)

    def test_slower_ms_per_step_gates(self):
        # ms_per_step is lower-is-better: 40 -> 50 is a +25% regression.
        b = self.write("b.json", walltime_doc(40.0, 25.0))
        c = self.write("c.json", walltime_doc(50.0, 25.0))
        self.assertEqual(self.run_report(b, c, "--max-regress", "30")
                         .returncode, 0)
        proc = self.run_report(b, c, "--max-regress", "20")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("regressed", proc.stderr)

    def test_lower_throughput_gates(self):
        # steps_per_sec is higher-is-better: 25 -> 20 is a +20% regression.
        b = self.write("b.json", walltime_doc(40.0, 25.0))
        c = self.write("c.json", walltime_doc(40.0, 20.0))
        proc = self.run_report(b, c, "--max-regress", "10")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("steps_per_sec", proc.stderr)

    def test_faster_run_never_gates(self):
        b = self.write("b.json", walltime_doc(40.0, 25.0))
        c = self.write("c.json", walltime_doc(30.0, 33.0))
        self.assertEqual(self.run_report(b, c, "--max-regress", "0")
                         .returncode, 0)

    def test_comm_summaries_compare(self):
        doc = {"bench": "comm", "ranks": 4, "rounds": 500, "bytes": 16384,
               "cases": {"tcp.pingpong": {"msg_rate": 50000.0,
                                          "us_per_msg": 20.0}}}
        b = self.write("b.json", doc)
        worse = {"bench": "comm", "ranks": 4, "rounds": 500, "bytes": 16384,
                 "cases": {"tcp.pingpong": {"msg_rate": 30000.0,
                                            "us_per_msg": 33.0}}}
        c = self.write("c.json", worse)
        proc = self.run_report(b, c, "--max-regress", "25")
        self.assertEqual(proc.returncode, 1)

    def test_mismatched_bench_kinds_fail(self):
        b = self.write("b.json", walltime_doc(40.0, 25.0))
        c = self.write("c.json", {"bench": "comm", "cases": {}})
        proc = self.run_report(b, c)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("bench kinds differ", proc.stderr)

    def test_case_missing_in_current_fails(self):
        b = self.write("b.json", walltime_doc(40.0, 25.0))
        c = self.write("c.json", {"bench": "walltime", "variants": {}})
        proc = self.run_report(b, c)
        self.assertEqual(proc.returncode, 2)

    def gbench_doc(self, time_ns, items_per_sec, time_unit="ns"):
        return {"context": {"host_name": "x"}, "benchmarks": [
            {"name": "BM_KernelReplay/2/0", "run_type": "iteration",
             "real_time": time_ns, "cpu_time": time_ns,
             "time_unit": time_unit, "items_per_second": items_per_sec},
            {"name": "BM_KernelReplay/2/0_mean", "run_type": "aggregate",
             "real_time": 1.0, "cpu_time": 1.0, "time_unit": time_unit},
        ]}

    def test_gbench_format_gates_on_slowdown(self):
        # google-benchmark JSON on both sides: real_time lower-is-better,
        # items_per_second higher-is-better; aggregates are skipped.
        b = self.write("b.json", self.gbench_doc(1000.0, 5.0e7))
        c = self.write("c.json", self.gbench_doc(1500.0, 3.3e7))
        self.assertEqual(self.run_report(b, c, "--max-regress", "60")
                         .returncode, 0)
        proc = self.run_report(b, c, "--max-regress", "25")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("BM_KernelReplay/2/0", proc.stderr)
        self.assertNotIn("_mean", proc.stdout)

    def test_gbench_time_units_normalise(self):
        # 1000 ns and 1 us are the same time; no regression either way.
        b = self.write("b.json", self.gbench_doc(1000.0, 5.0e7, "ns"))
        c = self.write("c.json", self.gbench_doc(1.0, 5.0e7, "us"))
        self.assertEqual(self.run_report(b, c, "--max-regress", "1")
                         .returncode, 0)

    def test_gbench_vs_walltime_kinds_differ(self):
        b = self.write("b.json", self.gbench_doc(1000.0, 5.0e7))
        c = self.write("c.json", walltime_doc(40.0, 25.0))
        self.assertEqual(self.run_report(b, c).returncode, 2)

    def test_invalid_json_fails(self):
        b = self.write("b.json", walltime_doc(40.0, 25.0))
        c = os.path.join(self.dir.name, "broken.json")
        with open(c, "w", encoding="utf-8") as f:
            f.write("{not json")
        self.assertEqual(self.run_report(b, c).returncode, 2)


if __name__ == "__main__":
    unittest.main()
