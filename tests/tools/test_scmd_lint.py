#!/usr/bin/env python3
"""Tests for tools/lint/scmd_lint.py: one negative fixture per rule (the
lint must actually fire), the clean-counterpart positives, suppression
handling, and the comment/string stripper's line-number preservation.
Stdlib unittest only."""

import os
import subprocess
import sys
import tempfile
import unittest

LINT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, os.pardir, "tools", "lint")
LINT = os.path.join(LINT_DIR, "scmd_lint.py")
sys.path.insert(0, LINT_DIR)

import scmd_lint  # noqa: E402


def findings(rule_fn, path, text):
    return list(rule_fn(path, text))


class StripperTest(unittest.TestCase):
    def test_preserves_line_structure(self):
        src = 'a;\n// new std::mutex\n/* new\nnew */\n"new"\nb;\n'
        out = scmd_lint.strip_comments_and_strings(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertNotIn("new", out)
        self.assertNotIn("mutex", out)

    def test_escaped_quote_in_string(self):
        out = scmd_lint.strip_comments_and_strings('x = "a\\"new"; new Y;')
        self.assertEqual(out.count("new"), 1)


class RawTagTest(unittest.TestCase):
    def test_integer_tag_flagged(self):
        hits = findings(scmd_lint.rule_raw_tag, "src/foo.cpp",
                        "comm.send(dst, 42, pack(v));\n"
                        "comm.recv(src, 0x7fffff00);\n")
        self.assertEqual([f.line for f in hits], [1, 2])
        self.assertTrue(all(f.rule == "raw-tag" for f in hits))

    def test_registry_constant_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_raw_tag, "src/foo.cpp",
            "comm.send(dst, tags::kCheck, pack(v));\n"
            "comm.recv(src, tags::import_tag(stage));\n"), [])

    def test_socket_syscall_skipped(self):
        self.assertEqual(findings(
            scmd_lint.rule_raw_tag, "src/net/tcp.cpp",
            "::send(fd, buf, 16, 0);\n::recv(fd, buf, 16, 0);\n"), [])

    def test_tags_hpp_exempt(self):
        self.assertEqual(findings(
            scmd_lint.rule_raw_tag, "src/net/tags.hpp",
            "comm.send(dst, 42, pack(v));\n"), [])


class MutexAnnotationTest(unittest.TestCase):
    def test_raw_std_mutex_flagged(self):
        hits = findings(scmd_lint.rule_mutex_annotation, "src/foo.hpp",
                        "std::mutex m_;\nstd::condition_variable cv_;\n")
        self.assertEqual(len(hits), 2)

    def test_annotated_types_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_mutex_annotation, "src/foo.hpp",
            "Mutex m_;\nCondVar cv_;\n// std::mutex in a comment\n"), [])

    def test_thread_safety_hpp_exempt(self):
        self.assertEqual(findings(
            scmd_lint.rule_mutex_annotation,
            "src/support/thread_safety.hpp", "std::mutex m_;\n"), [])


class NakedNewTest(unittest.TestCase):
    def test_new_expression_flagged(self):
        hits = findings(scmd_lint.rule_naked_new, "src/foo.cpp",
                        "auto* p = new int[4];\n")
        self.assertEqual(len(hits), 1)

    def test_allocator_and_include_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_naked_new, "src/foo.cpp",
            "#include <new>\n"
            "void* p = ::operator new(n, std::align_val_t{64});\n"
            "renew(); make_new_thing();\n"), [])


class StdRandTest(unittest.TestCase):
    def test_rand_flagged(self):
        hits = findings(scmd_lint.rule_std_rand, "src/foo.cpp",
                        "int x = std::rand();\nsrand(42);\n")
        self.assertEqual(len(hits), 2)

    def test_mt19937_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_std_rand, "src/foo.cpp",
            "std::mt19937_64 rng(seed);\nmy_random();\n"), [])


class UnpackTryTest(unittest.TestCase):
    UNGUARDED = ("const auto v = unpack<double>(comm.recv(0, tag));\n"
                 "use(v);\n")
    GUARDED = ("const auto v = unpack<double>(comm.recv(0, tag));\n"
               "SCMD_REQUIRE(v.size() >= 5, \"malformed frame\");\n")

    def test_unguarded_receive_flagged(self):
        hits = findings(scmd_lint.rule_unpack_try, "src/net/foo.cpp",
                        self.UNGUARDED)
        self.assertEqual(len(hits), 1)
        self.assertEqual(hits[0].rule, "unpack-try")

    def test_nearby_require_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_unpack_try, "src/net/foo.cpp", self.GUARDED), [])

    def test_unpack_of_local_buffer_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_unpack_try, "src/net/foo.cpp",
            "const auto v = unpack<double>(blob);\n"), [])

    def test_outside_receive_dirs_not_checked(self):
        self.assertEqual(findings(
            scmd_lint.rule_unpack_try, "src/md/foo.cpp", self.UNGUARDED), [])


class ServiceTagsTest(unittest.TestCase):
    def test_md_channel_in_serve_flagged(self):
        hits = findings(scmd_lint.rule_service_tags, "src/serve/daemon.cpp",
                        "pool_.send(r, tags::kTelemetry, payload);\n"
                        "pool_.recv(r, tags::kGatherState);\n")
        self.assertEqual([f.line for f in hits], [1, 2])
        self.assertTrue(all(f.rule == "service-tags" for f in hits))

    def test_svc_window_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_service_tags, "src/serve/worker.cpp",
            "pool.send(0, tags::kSvcUp, encode_up(msg));\n"
            "pool.recv(0, tags::kSvcCtrl);\n"), [])

    def test_subset_pass_through_and_declarations_clean(self):
        self.assertEqual(findings(
            scmd_lint.rule_service_tags, "src/serve/subset.hpp",
            "void send(int dst, int tag, Bytes payload) override;\n"
            "parent_.send(global(dst), tag, std::move(payload));\n"
            "parent_.recv(global(src), tag);\n"), [])

    def test_outside_serve_not_checked(self):
        self.assertEqual(findings(
            scmd_lint.rule_service_tags, "src/parallel/comm.cpp",
            "t.send(dst, tags::kTelemetry, payload);\n"), [])


class TsaEscapeTest(unittest.TestCase):
    def test_escape_in_net_flagged(self):
        hits = findings(scmd_lint.rule_tsa_escape, "src/net/foo.cpp",
                        "void f() SCMD_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assertEqual(len(hits), 1)

    def test_outside_no_escape_dirs_allowed(self):
        self.assertEqual(findings(
            scmd_lint.rule_tsa_escape, "src/md/foo.cpp",
            "void f() SCMD_NO_THREAD_SAFETY_ANALYSIS;\n"), [])


TAGS_FIXTURE = """
namespace scmd::tags {
inline constexpr int kFooBase = 100;
inline constexpr TagRange kRegistry[] = {
    {"foo", kFooBase, 4},
    {"bar", 200, 1},
};
}
"""

DOCS_OK = "| `foo` | 100-103 | halo |\n| `bar` | 200 | check |\n"


class TagDocsTest(unittest.TestCase):
    def run_rule(self, docs_text):
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "src", "net"))
            os.makedirs(os.path.join(root, "docs"))
            with open(os.path.join(root, scmd_lint.TAGS_HPP), "w",
                      encoding="utf-8") as f:
                f.write(TAGS_FIXTURE)
            with open(os.path.join(root, scmd_lint.TRANSPORT_MD), "w",
                      encoding="utf-8") as f:
                f.write(docs_text)
            return list(scmd_lint.rule_tag_docs(root))

    def test_matching_table_clean(self):
        self.assertEqual(self.run_rule(DOCS_OK), [])

    def test_missing_row_flagged(self):
        hits = self.run_rule("| `foo` | 100-103 | halo |\n")
        self.assertEqual(len(hits), 1)
        self.assertIn("`bar`", hits[0].message)

    def test_wrong_width_flagged(self):
        hits = self.run_rule(
            "| `foo` | 100-101 | halo |\n| `bar` | 200 | check |\n")
        self.assertEqual(len(hits), 1)
        self.assertIn("`foo`", hits[0].message)

    def test_stale_doc_row_flagged(self):
        hits = self.run_rule(DOCS_OK + "| `gone` | 300 | removed |\n")
        self.assertEqual(len(hits), 1)
        self.assertIn("`gone`", hits[0].message)


class CliTest(unittest.TestCase):
    def make_tree(self, bad=True):
        root = tempfile.mkdtemp()
        self.addCleanup(lambda: subprocess.run(["rm", "-rf", root],
                                               check=False))
        os.makedirs(os.path.join(root, "src", "net"))
        os.makedirs(os.path.join(root, "docs"))
        os.makedirs(os.path.join(root, "tools", "lint"))
        with open(os.path.join(root, scmd_lint.TAGS_HPP), "w",
                  encoding="utf-8") as f:
            f.write(TAGS_FIXTURE)
        with open(os.path.join(root, scmd_lint.TRANSPORT_MD), "w",
                  encoding="utf-8") as f:
            f.write(DOCS_OK)
        body = ("comm.send(0, 42, pack(v));\n" if bad
                else "comm.send(0, tags::kFooBase, pack(v));\n")
        with open(os.path.join(root, "src", "net", "proto.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(body)
        return root

    def run_lint(self, root, *extra):
        return subprocess.run(
            [sys.executable, LINT, "--root", root, *extra],
            capture_output=True, text=True, check=False)

    def test_clean_tree_exits_zero(self):
        p = self.run_lint(self.make_tree(bad=False))
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_findings_exit_nonzero(self):
        p = self.run_lint(self.make_tree(bad=True))
        self.assertEqual(p.returncode, 1)
        self.assertIn("raw-tag", p.stdout)

    def test_suppression_file_silences(self):
        root = self.make_tree(bad=True)
        with open(os.path.join(root, scmd_lint.SUPPRESSIONS), "w",
                  encoding="utf-8") as f:
            f.write("# justified in the test\nraw-tag:src/net/proto.cpp\n")
        self.assertEqual(self.run_lint(root).returncode, 0)
        # --no-suppressions restores the finding.
        self.assertEqual(
            self.run_lint(root, "--no-suppressions").returncode, 1)

    def test_malformed_suppression_is_usage_error(self):
        root = self.make_tree(bad=False)
        with open(os.path.join(root, scmd_lint.SUPPRESSIONS), "w",
                  encoding="utf-8") as f:
            f.write("not-a-rule src/net/proto.cpp\n")
        self.assertEqual(self.run_lint(root).returncode, 2)

    def test_list_rules(self):
        p = subprocess.run([sys.executable, LINT, "--list-rules"],
                           capture_output=True, text=True, check=False)
        self.assertEqual(p.returncode, 0)
        for rule in ("raw-tag", "mutex-annotation", "naked-new", "std-rand",
                     "unpack-try", "tsa-escape", "tag-docs"):
            self.assertIn(rule, p.stdout)

    def test_real_repo_is_clean(self):
        repo = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir)
        p = self.run_lint(os.path.abspath(repo))
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)


if __name__ == "__main__":
    unittest.main()
