#!/usr/bin/env python3
"""Compare two SC-MD binary checkpoints within tolerances.

Used by the TCP-parity and kill-and-recover tests: two runs (e.g. a
4-process `scmd_run --transport=tcp` run and the serial engine, or a
fault-injected recovered run and an unkilled reference) write
checkpoints of the same trajectory endpoint, and this script asserts
they agree atom by atom:

    compare_checkpoints.py a.ckpt b.ckpt --pos-tol 1e-8 --force-tol 1e-7

Both checkpoint generations are read:

  v2 ("SCMD_CK2"): the section container written by src/ckpt — a
      magic/version/count header followed by (fourcc id, u64 length, u32
      CRC32, payload) sections.  Every section CRC is validated; the
      BOXX/MASS/ATOM sections are compared, and with --sections the
      optional SIMS/RNGS/THRM/DCMP/TCEP sections are diffed too.
  v1 ("SCMD_CK1"): the legacy fixed layout of the old
      src/io/checkpoint.cpp writer.

Exit status 0 = match, 1 = mismatch (largest deviations printed), 2 =
malformed file (bad magic/version/CRC, truncation) / usage error.
"""

import argparse
import struct
import sys
import zlib

MAGIC_V1 = 0x53434D445F434B31  # "SCMD_CK1"
MAGIC_V2 = 0x53434D445F434B32  # "SCMD_CK2"
VERSION_V2 = 2

# Section ids are little-endian fourcc tags (src/ckpt/codec.hpp).
def fourcc(tag):
    return int.from_bytes(tag.encode("ascii"), "little")


SEC_BOX = fourcc("BOXX")
SEC_MASS = fourcc("MASS")
SEC_ATOM = fourcc("ATOM")
SEC_SIM = fourcc("SIMS")
SEC_RNG = fourcc("RNGS")
SEC_THERMO = fourcc("THRM")
SEC_DECOMP = fourcc("DCMP")
SEC_CACHE = fourcc("TCEP")

SECTION_NAMES = {
    SEC_BOX: "BOXX",
    SEC_MASS: "MASS",
    SEC_ATOM: "ATOM",
    SEC_SIM: "SIMS",
    SEC_RNG: "RNGS",
    SEC_THERMO: "THRM",
    SEC_DECOMP: "DCMP",
    SEC_CACHE: "TCEP",
}

ATOM_RECORD = struct.Struct("<9d2i")  # pos, vel, force, type, pad


def fail(msg):
    print(f"compare_checkpoints: {msg}", file=sys.stderr)
    sys.exit(2)


def section_name(sec_id):
    if sec_id in SECTION_NAMES:
        return SECTION_NAMES[sec_id]
    return f"{sec_id:#010x}"


class Checkpoint:
    """Decoded checkpoint: required state plus optional v2 sections."""

    def __init__(self):
        self.version = 0
        self.box = None
        self.masses = None
        self.atoms = None  # list of (pos, vel, force, type)
        self.sections = {}  # raw payloads by id (v2 only)

    @property
    def sim(self):
        if SEC_SIM not in self.sections:
            return None
        step, total, dt = struct.unpack_from("<qqd", self.sections[SEC_SIM])
        return {"step": step, "total_steps": total, "dt": dt}

    @property
    def decomp(self):
        if SEC_DECOMP not in self.sections:
            return None
        p = self.sections[SEC_DECOMP]
        dims = struct.unpack_from("<9i", p)
        off = 36
        cuts = []
        for _ in range(3):
            (n,) = struct.unpack_from("<Q", p, off)
            off += 8
            cuts.append(list(struct.unpack_from(f"<{n}i", p, off)))
            off += 4 * n
        return {
            "pgrid": dims[0:3],
            "align": dims[3:6],
            "fine_res": dims[6:9],
            "cuts": cuts,
        }

    @property
    def cache(self):
        if SEC_CACHE not in self.sections:
            return None
        epoch, skin = struct.unpack_from("<Qd", self.sections[SEC_CACHE])
        return {"epoch": epoch, "skin": skin}

    @property
    def thermo(self):
        if SEC_THERMO not in self.sections:
            return None
        kind, target_k, tau = struct.unpack_from(
            "<i4x2d", self.sections[SEC_THERMO]
        )
        return {"kind": kind, "target_k": target_k, "tau": tau}


def parse_v1(path, data):
    ck = Checkpoint()
    ck.version = 1
    off = 8

    def take(fmt):
        nonlocal off
        size = struct.calcsize(fmt)
        if off + size > len(data):
            fail(f"{path}: truncated at offset {off}")
        values = struct.unpack_from(fmt, data, off)
        off += size
        return values

    (version,) = take("<I")
    if version != 1:
        fail(f"{path}: unsupported checkpoint version {version}")
    ck.box = take("<3d")
    (num_types,) = take("<i")
    if not 0 < num_types < 1024:
        fail(f"{path}: implausible species count {num_types}")
    ck.masses = [take("<d")[0] for _ in range(num_types)]
    (num_atoms,) = take("<q")
    if num_atoms < 0:
        fail(f"{path}: negative atom count")
    ck.atoms = []
    for _ in range(num_atoms):
        pos = take("<3d")
        vel = take("<3d")
        force = take("<3d")
        (atype,) = take("<i")
        ck.atoms.append((pos, vel, force, atype))
    if off != len(data):
        fail(f"{path}: {len(data) - off} trailing bytes")
    return ck


def parse_v2(path, data):
    ck = Checkpoint()
    ck.version = 2
    header = struct.Struct("<QII")
    if len(data) < header.size:
        fail(f"{path}: truncated header")
    magic, version, count = header.unpack_from(data)
    if version != VERSION_V2:
        fail(f"{path}: unsupported checkpoint version {version}")
    off = header.size
    sec_header = struct.Struct("<IQI")
    for _ in range(count):
        if off + sec_header.size > len(data):
            fail(f"{path}: truncated section header at offset {off}")
        sec_id, length, crc = sec_header.unpack_from(data, off)
        off += sec_header.size
        if off + length > len(data):
            fail(
                f"{path}: section {section_name(sec_id)} overruns the file "
                f"({length} bytes at offset {off})"
            )
        payload = data[off : off + length]
        off += length
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != crc:
            fail(
                f"{path}: CRC mismatch in section {section_name(sec_id)} "
                f"(stored {crc:#010x}, computed {actual:#010x})"
            )
        if sec_id in ck.sections:
            fail(f"{path}: duplicate section {section_name(sec_id)}")
        ck.sections[sec_id] = payload
    if off != len(data):
        fail(f"{path}: {len(data) - off} trailing bytes")

    for required in (SEC_BOX, SEC_MASS, SEC_ATOM):
        if required not in ck.sections:
            fail(f"{path}: missing required section {section_name(required)}")
    ck.box = struct.unpack("<3d", ck.sections[SEC_BOX])
    mass_payload = ck.sections[SEC_MASS]
    (num_types,) = struct.unpack_from("<Q", mass_payload)
    if not 0 < num_types < 1024:
        fail(f"{path}: implausible species count {num_types}")
    ck.masses = list(struct.unpack_from(f"<{num_types}d", mass_payload, 8))
    atom_payload = ck.sections[SEC_ATOM]
    (num_atoms,) = struct.unpack_from("<Q", atom_payload)
    if 8 + num_atoms * ATOM_RECORD.size != len(atom_payload):
        fail(f"{path}: ATOM section length disagrees with its atom count")
    ck.atoms = []
    for i in range(num_atoms):
        rec = ATOM_RECORD.unpack_from(atom_payload, 8 + i * ATOM_RECORD.size)
        ck.atoms.append((rec[0:3], rec[3:6], rec[6:9], rec[9]))
    return ck


def read_checkpoint(path):
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < 8:
        fail(f"{path}: too short to be a checkpoint")
    (magic,) = struct.unpack_from("<Q", data)
    if magic == MAGIC_V1:
        return parse_v1(path, data)
    if magic == MAGIC_V2:
        return parse_v2(path, data)
    fail(f"{path}: not an SC-MD checkpoint (bad magic {magic:#x})")


def max_abs_diff(a, b):
    return max(abs(x - y) for x, y in zip(a, b))


def compare_sections(a, b):
    """Diff the optional v2 sections both files carry.  Returns mismatch
    descriptions (informational sections must agree exactly)."""
    problems = []
    for name, key in (
        ("SIMS", "sim"),
        ("THRM", "thermo"),
        ("DCMP", "decomp"),
        ("TCEP", "cache"),
    ):
        va, vb = getattr(a, key), getattr(b, key)
        if va is None or vb is None:
            continue
        if va != vb:
            problems.append(f"section {name} differs: {va} vs {vb}")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("reference")
    ap.add_argument("candidate")
    ap.add_argument("--pos-tol", type=float, default=1e-8)
    ap.add_argument("--vel-tol", type=float, default=1e-8)
    ap.add_argument("--force-tol", type=float, default=1e-7)
    ap.add_argument(
        "--sections",
        action="store_true",
        help="also require the optional v2 sections (SIMS/THRM/DCMP/TCEP) "
        "present in both files to agree exactly",
    )
    args = ap.parse_args()

    a = read_checkpoint(args.reference)
    b = read_checkpoint(args.candidate)

    if len(a.atoms) != len(b.atoms):
        fail(f"atom count mismatch: {len(a.atoms)} vs {len(b.atoms)}")
    if a.masses != b.masses:
        fail("species mass tables differ")
    if max_abs_diff(a.box, b.box) > 1e-12:
        fail("box dimensions differ")

    worst = {"pos": (0.0, -1), "vel": (0.0, -1), "force": (0.0, -1)}
    mismatches = 0
    for i, (ra, rb) in enumerate(zip(a.atoms, b.atoms)):
        if ra[3] != rb[3]:
            fail(f"atom {i}: type mismatch {ra[3]} vs {rb[3]}")
        for key, idx, tol in (
            ("pos", 0, args.pos_tol),
            ("vel", 1, args.vel_tol),
            ("force", 2, args.force_tol),
        ):
            d = max_abs_diff(ra[idx], rb[idx])
            if d > worst[key][0]:
                worst[key] = (d, i)
            if d > tol:
                mismatches += 1

    print(
        f"compare_checkpoints: v{a.version} vs v{b.version}, "
        f"{len(a.atoms)} atoms; max |d_pos| = "
        f"{worst['pos'][0]:.3e} (atom {worst['pos'][1]}), max |d_vel| = "
        f"{worst['vel'][0]:.3e}, max |d_force| = {worst['force'][0]:.3e}"
    )
    section_problems = compare_sections(a, b) if args.sections else []
    for problem in section_problems:
        print(f"compare_checkpoints: {problem}", file=sys.stderr)
    if mismatches or section_problems:
        if mismatches:
            print(
                f"compare_checkpoints: FAIL — {mismatches} component(s) "
                f"above tolerance (pos {args.pos_tol:g}, vel "
                f"{args.vel_tol:g}, force {args.force_tol:g})",
                file=sys.stderr,
            )
        sys.exit(1)
    print("compare_checkpoints: OK")


if __name__ == "__main__":
    main()
