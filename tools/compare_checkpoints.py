#!/usr/bin/env python3
"""Compare two SC-MD binary checkpoints within tolerances.

Used by the TCP-parity tests: a 4-process `scmd_run --transport=tcp` run
and the serial engine write checkpoints of the same trajectory endpoint,
and this script asserts they agree atom by atom:

    compare_checkpoints.py a.ckpt b.ckpt --pos-tol 1e-8 --force-tol 1e-7

Exit status 0 = match, 1 = mismatch (largest deviations printed), 2 =
malformed file / usage error.  Format: see src/io/checkpoint.cpp
(magic "SCMD_CK1", version 1, little-endian).
"""

import argparse
import struct
import sys

MAGIC = 0x53434D445F434B31
VERSION = 1


def fail(msg):
    print(f"compare_checkpoints: {msg}", file=sys.stderr)
    sys.exit(2)


def read_checkpoint(path):
    """Return (box_lengths, masses, atoms) where atoms is a list of
    (pos, vel, force, type) tuples of 3-vectors."""
    with open(path, "rb") as f:
        data = f.read()
    off = 0

    def take(fmt):
        nonlocal off
        size = struct.calcsize(fmt)
        if off + size > len(data):
            fail(f"{path}: truncated at offset {off}")
        values = struct.unpack_from(fmt, data, off)
        off += size
        return values

    (magic,) = take("<Q")
    if magic != MAGIC:
        fail(f"{path}: not an SC-MD checkpoint (bad magic {magic:#x})")
    (version,) = take("<I")
    if version != VERSION:
        fail(f"{path}: unsupported checkpoint version {version}")
    box = take("<3d")
    (num_types,) = take("<i")
    if not 0 < num_types < 1024:
        fail(f"{path}: implausible species count {num_types}")
    masses = [take("<d")[0] for _ in range(num_types)]
    (num_atoms,) = take("<q")
    if num_atoms < 0:
        fail(f"{path}: negative atom count")
    atoms = []
    for _ in range(num_atoms):
        pos = take("<3d")
        vel = take("<3d")
        force = take("<3d")
        (atype,) = take("<i")
        atoms.append((pos, vel, force, atype))
    if off != len(data):
        fail(f"{path}: {len(data) - off} trailing bytes")
    return box, masses, atoms


def max_abs_diff(a, b):
    return max(abs(x - y) for x, y in zip(a, b))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("reference")
    ap.add_argument("candidate")
    ap.add_argument("--pos-tol", type=float, default=1e-8)
    ap.add_argument("--vel-tol", type=float, default=1e-8)
    ap.add_argument("--force-tol", type=float, default=1e-7)
    args = ap.parse_args()

    box_a, masses_a, atoms_a = read_checkpoint(args.reference)
    box_b, masses_b, atoms_b = read_checkpoint(args.candidate)

    if len(atoms_a) != len(atoms_b):
        fail(f"atom count mismatch: {len(atoms_a)} vs {len(atoms_b)}")
    if masses_a != masses_b:
        fail("species mass tables differ")
    if max_abs_diff(box_a, box_b) > 1e-12:
        fail("box dimensions differ")

    worst = {"pos": (0.0, -1), "vel": (0.0, -1), "force": (0.0, -1)}
    mismatches = 0
    for i, (a, b) in enumerate(zip(atoms_a, atoms_b)):
        if a[3] != b[3]:
            fail(f"atom {i}: type mismatch {a[3]} vs {b[3]}")
        for key, idx, tol in (
            ("pos", 0, args.pos_tol),
            ("vel", 1, args.vel_tol),
            ("force", 2, args.force_tol),
        ):
            d = max_abs_diff(a[idx], b[idx])
            if d > worst[key][0]:
                worst[key] = (d, i)
            if d > tol:
                mismatches += 1

    print(
        f"compare_checkpoints: {len(atoms_a)} atoms; max |d_pos| = "
        f"{worst['pos'][0]:.3e} (atom {worst['pos'][1]}), max |d_vel| = "
        f"{worst['vel'][0]:.3e}, max |d_force| = {worst['force'][0]:.3e}"
    )
    if mismatches:
        print(
            f"compare_checkpoints: FAIL — {mismatches} component(s) above "
            f"tolerance (pos {args.pos_tol:g}, vel {args.vel_tol:g}, "
            f"force {args.force_tol:g})",
            file=sys.stderr,
        )
        sys.exit(1)
    print("compare_checkpoints: OK")


if __name__ == "__main__":
    main()
