#!/usr/bin/env bash
# Local sanitizer + lint driver (docs/CHECKING.md).
#
# Usage: tools/run_sanitizers.sh [asan|tsan|tidy|lint|all]
#
# Mirrors the CI jobs exactly, via the checked-in CMake presets:
#   asan — Debug build with ASan+UBSan and the invariant checker, full
#          ctest suite.
#   tsan — ThreadSanitizer build, `parallel`+`net`-labelled tests (the
#          threaded subset plus the transport stack; TSan's 5-20x
#          slowdown makes the full suite impractical).
#   tidy — clang-tidy over the compile database.  Skipped with a notice
#          when clang-tidy is not installed.
#   lint — tools/lint/scmd_lint.py over the tree, then (when clang++ is
#          installed) a -Werror=thread-safety build of the library
#          (docs/CHECKING.md, "The static layer").
# Logs land in build-<preset>/sanitizer-logs/.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_preset() {
  local preset="$1" build_dir="$2"
  shift 2
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  mkdir -p "$build_dir/sanitizer-logs"
  # Sanitizer reports go to stderr; keep a copy for postmortems the way
  # the CI artifact upload does.
  ctest --preset "$preset" "$@" 2>&1 | tee "$build_dir/sanitizer-logs/ctest.log"
}

case "$mode" in
  asan|all)
    run_preset asan-ubsan build-asan
    ;;&
  tsan|all)
    run_preset tsan build-tsan
    ;;&
  tidy|all)
    if ! command -v clang-tidy >/dev/null 2>&1; then
      echo "clang-tidy not installed; skipping the lint gate" >&2
      [ "$mode" = tidy ] && exit 1
    else
      cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
      # Lint first-party code only; gtest/benchmark glue is third-party.
      git ls-files 'src/**/*.cpp' 'apps/*.cpp' 'bench/*.cpp' \
        | xargs -P "$(nproc)" -n 8 clang-tidy -p build --quiet
    fi
    ;;&
  lint|all)
    python3 tools/lint/scmd_lint.py
    if command -v clang++ >/dev/null 2>&1; then
      # The thread-safety analysis only exists in Clang; GCC builds
      # compile the SCMD_* annotations away.
      cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DSCMD_BUILD_TESTS=OFF -DSCMD_BUILD_BENCH=OFF \
        -DSCMD_BUILD_EXAMPLES=OFF
      cmake --build build-tsa -j "$(nproc)"
    else
      echo "clang++ not installed; skipping the thread-safety build" >&2
    fi
    ;;&
  asan|tsan|tidy|lint|all)
    ;;
  *)
    echo "usage: $0 [asan|tsan|tidy|lint|all]" >&2
    exit 2
    ;;
esac
