#!/usr/bin/env python3
"""Validate scmd observability artifacts.

Checks that a metrics JSONL file parses line-by-line with the expected
record shape, and that a trace JSON file is a well-formed Chrome
trace_event document with properly nested spans.

Usage:
    validate_obs.py [--metrics m.jsonl] [--trace t.json]
                    [--require-metrics name1,name2,...]
                    [--min-steps N] [--expect-balance] [--expect-cache]
                    [--expect-comm] [--expect-serve]

--expect-balance asserts the dynamic load-balancing schema: every metrics
record carries the balance.* gauges, at least one record observed a
rebalance, and the trace (when given) contains the per-step balance span.

--expect-cache asserts the persistent-tuple-list schema: every metrics
record carries the tuple_cache.* gauges, the run observed at least one
rebuild AND at least one reuse step, and the trace (when given) contains
a replay.* span.

--expect-comm asserts the transport-statistics schema (docs/TRANSPORT.md):
every metrics record carries the comm.transport.* gauges, at least one
record observed traffic (comm.transport.messages_sent > 0), and the
values are true per-step deltas — a series whose bytes_sent is identical
across every record is rejected as the once-per-run cumulative-constant
bug the deltas replaced (record 0 includes bootstrap traffic, so real
delta series always vary).

--expect-serve asserts the serve daemon schema (docs/SERVICE.md): every
record carries the serve.* gauges, at least one record observed busy
worker ranks, and on the final record the job ledger (submitted =
done + failed + cancelled + active + queued) and the rank ledger
(total = busy + free + dead) both balance.

--expect-merged N asserts the distributed-telemetry schema
(docs/OBSERVABILITY.md): the metrics carry the per-step imbalance.*
summary, the comm.transport.* deltas, and phase_hist.* histograms; the
trace is ONE clock-aligned merged timeline with exactly N lanes (tid =
rank), every lane carrying step spans, and the k-th step span of every
rank mutually overlapping within --merge-slack-us (default 50000) — the
signature of per-rank clocks mapped into rank 0's timebase.

Exits non-zero (with a message on stderr) on the first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


BALANCE_METRICS = ("balance.ratio", "balance.rebalanced",
                   "balance.predicted_ratio", "balance.migrated_atoms")

CACHE_METRICS = ("tuple_cache.rebuilds", "tuple_cache.reuse_steps",
                 "tuple_cache.replayed")

COMM_METRICS = ("comm.transport.messages_sent", "comm.transport.bytes_sent",
                "comm.transport.messages_recv", "comm.transport.bytes_recv",
                "comm.transport.recv_stall_s",
                "comm.transport.max_mailbox_depth")

MERGED_METRICS = ("imbalance.search.max", "imbalance.search.avg",
                  "imbalance.search.ratio")

SERVE_METRICS = ("serve.queue_depth", "serve.jobs_active",
                 "serve.jobs_submitted", "serve.jobs_done",
                 "serve.jobs_failed", "serve.jobs_cancelled",
                 "serve.ranks_total", "serve.ranks_busy",
                 "serve.ranks_free", "serve.ranks_dead")


def validate_metrics(path, require_metrics, min_steps, expect_balance=False,
                     expect_cache=False, expect_comm=False,
                     expect_merged=None, expect_serve=False):
    if expect_balance:
        require_metrics = list(require_metrics) + list(BALANCE_METRICS)
    if expect_cache:
        require_metrics = list(require_metrics) + list(CACHE_METRICS)
    if expect_comm:
        require_metrics = list(require_metrics) + list(COMM_METRICS)
    if expect_merged:
        require_metrics = (list(require_metrics) + list(MERGED_METRICS) +
                           list(COMM_METRICS))
    if expect_serve:
        require_metrics = list(require_metrics) + list(SERVE_METRICS)
    rebalances = 0
    cache_rebuilds = 0
    cache_reuses = 0
    comm_messages = 0
    phase_hists = 0
    serve_busy = 0
    serve_last = None
    steps = []
    series = {}  # attrs tuple -> step list (one series per strategy/platform)
    comm_series = {}  # attrs tuple -> comm.transport.bytes_sent list
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{line_no}: invalid JSON: {e}")
            if not isinstance(rec, dict):
                fail(f"{path}:{line_no}: record is not an object")
            if "step" not in rec or not isinstance(rec["step"], int):
                fail(f"{path}:{line_no}: missing integer 'step'")
            if "metrics" not in rec or not isinstance(rec["metrics"], dict):
                fail(f"{path}:{line_no}: missing 'metrics' object")
            for name, value in rec["metrics"].items():
                if value is not None and not isinstance(value, (int, float)):
                    fail(f"{path}:{line_no}: metric {name!r} is not numeric")
            for name in require_metrics:
                if name not in rec["metrics"]:
                    fail(f"{path}:{line_no}: required metric {name!r} absent")
            for hname, h in rec.get("hist", {}).items():
                for key in ("lo", "hi", "count", "buckets"):
                    if key not in h:
                        fail(f"{path}:{line_no}: hist {hname!r} missing {key!r}")
                if sum(h["buckets"]) + h.get("underflow", 0) + h.get(
                        "overflow", 0) != h["count"]:
                    fail(f"{path}:{line_no}: hist {hname!r} counts don't sum")
                if hname.startswith("phase_hist."):
                    phase_hists += 1
            if rec["metrics"].get("balance.rebalanced"):
                rebalances += 1
            cache_rebuilds += rec["metrics"].get("tuple_cache.rebuilds") or 0
            cache_reuses += rec["metrics"].get("tuple_cache.reuse_steps") or 0
            comm_messages += rec["metrics"].get(
                "comm.transport.messages_sent") or 0
            if expect_serve:
                if (rec["metrics"].get("serve.ranks_busy") or 0) > 0:
                    serve_busy += 1
                serve_last = rec["metrics"]
            steps.append(rec["step"])
            key = tuple(sorted(rec.get("attrs", {}).items()))
            series.setdefault(key, []).append(rec["step"])
            if "comm.transport.bytes_sent" in rec["metrics"]:
                comm_series.setdefault(key, []).append(
                    rec["metrics"]["comm.transport.bytes_sent"])
    if expect_balance and rebalances == 0:
        fail(f"{path}: --expect-balance, but no record observed a rebalance")
    if expect_cache and cache_rebuilds == 0:
        fail(f"{path}: --expect-cache, but no record observed a rebuild")
    if expect_cache and cache_reuses == 0:
        fail(f"{path}: --expect-cache, but no record observed a reuse step")
    if expect_comm and comm_messages == 0:
        fail(f"{path}: --expect-comm, but no record observed transport "
             f"traffic")
    if expect_comm or expect_merged:
        # Per-step delta semantics: record 0 includes the bootstrap
        # traffic (scatter, clock sync), so a real delta series varies.
        # All-identical values across >= 3 records are the old
        # cumulative-constant bug.
        for key, vals in comm_series.items():
            if len(vals) >= 3 and vals[0] > 0 and len(set(vals)) == 1:
                fail(f"{path}: series {dict(key)}: "
                     f"comm.transport.bytes_sent identical across "
                     f"{len(vals)} records — cumulative constants, not "
                     f"per-step deltas")
    if expect_serve:
        # Daemon lifecycle semantics (docs/SERVICE.md): the pool actually
        # ran jobs, every submitted job reached a terminal state by the
        # final record, and the rank ledger stayed conserved.
        if serve_busy == 0:
            fail(f"{path}: --expect-serve, but no record observed a busy "
                 f"rank")
        if serve_last is not None:
            if (serve_last["serve.jobs_submitted"] or 0) == 0:
                fail(f"{path}: --expect-serve, but no job was ever "
                     f"submitted")
            terminal = ((serve_last["serve.jobs_done"] or 0) +
                        (serve_last["serve.jobs_failed"] or 0) +
                        (serve_last["serve.jobs_cancelled"] or 0))
            open_jobs = ((serve_last["serve.jobs_active"] or 0) +
                         (serve_last["serve.queue_depth"] or 0))
            if terminal + open_jobs != (serve_last["serve.jobs_submitted"]
                                        or 0):
                fail(f"{path}: --expect-serve: job ledger does not balance "
                     f"(submitted {serve_last['serve.jobs_submitted']}, "
                     f"terminal {terminal}, open {open_jobs})")
            ranks = serve_last["serve.ranks_total"] or 0
            accounted = ((serve_last["serve.ranks_busy"] or 0) +
                         (serve_last["serve.ranks_free"] or 0) +
                         (serve_last["serve.ranks_dead"] or 0))
            if ranks != accounted:
                fail(f"{path}: --expect-serve: rank ledger does not balance "
                     f"(total {ranks}, accounted {accounted})")
    if expect_merged and phase_hists == 0:
        fail(f"{path}: --expect-merged, but no phase_hist.* histogram "
             f"present")
    if len(steps) < min_steps:
        fail(f"{path}: only {len(steps)} records, expected >= {min_steps}")
    # Steps must be non-decreasing within each series (attrs identify the
    # series: strategy, platform, ...); a new series may restart at 0.
    for key, s in series.items():
        if s != sorted(s):
            fail(f"{path}: series {dict(key)}: steps not non-decreasing")
    print(f"validate_obs: {path}: OK ({len(steps)} records, "
          f"{len(series)} series, steps {min(steps)}..{max(steps)})")


def validate_trace(path, min_spans=1, expect_balance=False,
                   expect_cache=False, expect_merged=None,
                   merge_slack_us=50000.0):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' is not a list")
    if len(events) < min_spans:
        fail(f"{path}: only {len(events)} spans, expected >= {min_spans}")
    lanes = {}
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {i} missing {key!r}")
        if e["ph"] != "X":
            fail(f"{path}: event {i} has ph={e['ph']!r}, expected 'X'")
        if e["dur"] < 0:
            fail(f"{path}: event {i} has negative duration")
        lanes.setdefault(e["tid"], []).append(e)
    # Spans on one lane must nest (contain or disjoint, never partial
    # overlap) — this is what makes the flame graph render correctly.
    slack = 1.0  # microseconds of clock tolerance
    for tid, spans in lanes.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for e in spans:
            while stack and e["ts"] >= stack[-1]["ts"] + stack[-1]["dur"] - slack:
                stack.pop()
            if stack and e["ts"] + e["dur"] > \
                    stack[-1]["ts"] + stack[-1]["dur"] + slack:
                fail(f"{path}: tid {tid}: span {e['name']!r} at ts={e['ts']}"
                     f" partially overlaps {stack[-1]['name']!r}")
            stack.append(e)
    names = sorted({e["name"] for e in events})
    if expect_balance and "balance" not in names:
        fail(f"{path}: --expect-balance, but no 'balance' span present")
    if expect_cache and not any(n.startswith("replay") for n in names):
        fail(f"{path}: --expect-cache, but no 'replay.*' span present")
    if expect_merged:
        # One merged timeline: exactly N lanes (tid = rank), each with
        # step spans, and the k-th step span of every rank mutually
        # overlapping within the clock-alignment slack.
        want = set(range(expect_merged))
        if set(lanes) != want:
            fail(f"{path}: --expect-merged {expect_merged}: lanes (tids) "
                 f"are {sorted(lanes)}, expected {sorted(want)}")
        step_spans = {}
        for tid, spans in lanes.items():
            mine = sorted((e for e in spans if e["name"] == "step"),
                          key=lambda e: e["ts"])
            if not mine:
                fail(f"{path}: --expect-merged: lane {tid} has no "
                     f"'step' span")
            step_spans[tid] = mine
        depth = min(len(s) for s in step_spans.values())
        for k in range(depth):
            kth = [step_spans[tid][k] for tid in sorted(step_spans)]
            last_start = max(e["ts"] for e in kth)
            first_end = min(e["ts"] + e["dur"] for e in kth)
            if last_start > first_end + merge_slack_us:
                fail(f"{path}: --expect-merged: step span {k} does not "
                     f"overlap across ranks (gap "
                     f"{last_start - first_end:.1f} us > slack "
                     f"{merge_slack_us:g} us) — traces not clock-aligned")
    print(f"validate_obs: {path}: OK ({len(events)} spans, "
          f"{len(lanes)} lane(s), phases: {', '.join(names)})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", help="metrics JSONL path")
    ap.add_argument("--trace", help="Chrome trace JSON path")
    ap.add_argument("--require-metrics", default="",
                    help="comma-separated metric names every record must have")
    ap.add_argument("--min-steps", type=int, default=1,
                    help="minimum number of metrics records")
    ap.add_argument("--expect-balance", action="store_true",
                    help="require balance.* metrics, >= 1 rebalance, and "
                         "the balance trace span")
    ap.add_argument("--expect-cache", action="store_true",
                    help="require tuple_cache.* metrics, >= 1 rebuild and "
                         ">= 1 reuse step, and a replay.* trace span")
    ap.add_argument("--expect-comm", action="store_true",
                    help="require comm.transport.* metrics, >= 1 record "
                         "with messages_sent > 0, and per-step delta "
                         "(non-constant) series")
    ap.add_argument("--expect-merged", type=int, default=None, metavar="N",
                    help="require the distributed-telemetry schema: "
                         "imbalance.* + comm.transport.* + phase_hist.* "
                         "metrics, and a merged trace with N clock-aligned "
                         "rank lanes")
    ap.add_argument("--expect-serve", action="store_true",
                    help="require the serve daemon schema: serve.* gauges "
                         "on every record, >= 1 record with busy ranks, "
                         "and balanced job/rank ledgers on the final one")
    ap.add_argument("--merge-slack-us", type=float, default=50000.0,
                    help="clock-alignment tolerance for --expect-merged "
                         "step-span overlap (default 50000)")
    args = ap.parse_args()
    if not args.metrics and not args.trace:
        fail("nothing to validate: pass --metrics and/or --trace")
    require = [n for n in args.require_metrics.split(",") if n]
    if args.metrics:
        validate_metrics(args.metrics, require, args.min_steps,
                         expect_balance=args.expect_balance,
                         expect_cache=args.expect_cache,
                         expect_comm=args.expect_comm,
                         expect_merged=args.expect_merged,
                         expect_serve=args.expect_serve)
    if args.trace:
        validate_trace(args.trace, expect_balance=args.expect_balance,
                       expect_cache=args.expect_cache,
                       expect_merged=args.expect_merged,
                       merge_slack_us=args.merge_slack_us)


if __name__ == "__main__":
    main()
