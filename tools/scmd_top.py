#!/usr/bin/env python3
"""Live run monitor for a distributed scmd_run (docs/OBSERVABILITY.md).

Connects to the status socket rank 0 opens when scmd_run is launched
with --status-port=N (0 picks an ephemeral port, printed on the `#
status:` line of rank 0's log), polls the latest run snapshot, and
renders a per-rank table: current step, step rate, mailbox watermark,
median step latency, clock offset, plus recent slow-step anomalies
(steps > 3x the rank's median).

Also the service monitor (docs/SERVICE.md): a daemon started as
`scmd_serve --status-port=N` publishes its job table on the "jobs"
snapshot channel, and `scmd_top.py --jobs` renders it — one row per
job with state, rank allocation, progress, and throughput.

Usage:
    scmd_top.py --port N [--host 127.0.0.1] [--interval 1.0]
                [--once] [--json] [--jobs | --channel NAME]

--once prints a single snapshot and exits (scripts, CI); --json prints
the raw snapshot JSON instead of the table.  Exits 0 when the run
reports finished, 1 on protocol/connection errors.

Wire protocol: client sends a length-prefixed request (u32 LE byte
count + payload naming the snapshot channel, empty meaning "status"),
server replies with a length-prefixed JSON snapshot.  One connection
can issue many requests.
"""

import argparse
import json
import socket
import struct
import sys
import time


def fail(msg):
    print(f"scmd_top: {msg}", file=sys.stderr)
    sys.exit(1)


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("status socket closed mid-message")
        buf += chunk
    return buf


def request_snapshot(sock, channel=""):
    """One request/response round trip; returns the parsed snapshot."""
    body = channel.encode("utf-8")
    sock.sendall(struct.pack("<I", len(body)) + body)
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    if length > (1 << 24):
        raise ConnectionError(f"implausible snapshot length {length}")
    return json.loads(recv_exact(sock, length).decode("utf-8"))


def render(snap):
    lines = []
    total = snap.get("num_records", 0)
    latest = snap.get("latest_step", -1)
    done = f"{snap.get('finalized_steps', 0)}/{total}" if total else \
        str(snap.get("finalized_steps", 0))
    state = "finished" if snap.get("finished") else "running"
    lines.append(f"scmd_top  step {latest}  records {done}  "
                 f"imbalance {snap.get('imbalance_ratio', 0.0):.3f}  "
                 f"[{state}]")
    lines.append(f"{'rank':>4} {'step':>8} {'steps/s':>9} {'mailbox':>8} "
                 f"{'med ms':>8} {'clk off us':>11} {'clk +/- us':>11}")
    for r in snap.get("ranks", []):
        lines.append(
            f"{r['rank']:>4} {r['step']:>8} {r['steps_per_sec']:>9.2f} "
            f"{r['mailbox_depth']:>8} {r['median_step_ms']:>8.3f} "
            f"{r['clock_offset_us']:>11.1f} {r['clock_uncertainty_us']:>11.1f}")
    anomalies = snap.get("anomalies", [])
    if anomalies:
        lines.append(f"slow steps (> 3x rank median), last "
                     f"{len(anomalies)}:")
        for a in anomalies[-8:]:
            lines.append(f"  rank {a['rank']} span #{a['span_index']}: "
                         f"{a['dur_ms']:.3f} ms vs median "
                         f"{a['median_ms']:.3f} ms")
    return "\n".join(lines)


def render_jobs(snap):
    """The serve daemon's job table ("jobs" channel, docs/SERVICE.md)."""
    pool = snap.get("pool", {})
    lines = [f"scmd_top  pool workers {pool.get('workers', 0)}  "
             f"free {pool.get('free', 0)}  dead {pool.get('dead', 0)}  "
             f"queued {snap.get('queue_depth', 0)}  "
             f"active {snap.get('jobs_active', 0)}"]
    lines.append(f"{'job':>5} {'state':>10} {'prio':>5} {'ranks':>12} "
                 f"{'steps':>15} {'steps/s':>9} {'chunks':>7} "
                 f"{'wait s':>7}")
    for j in snap.get("jobs", []):
        ranks = ",".join(str(r) for r in j.get("ranks", []))
        if not ranks:
            ranks = f"({j.get('ranks_wanted', 0)} wanted)"
        steps = f"{j.get('steps_done', 0)}/{j.get('steps_total', 0)}"
        lines.append(
            f"{j['id']:>5} {j['state']:>10} {j.get('priority', 0):>5} "
            f"{ranks:>12} {steps:>15} {j.get('steps_per_sec', 0.0):>9.2f} "
            f"{j.get('chunks', 0):>7} {j.get('queue_latency_s', 0.0):>7.2f}")
        if j.get("error"):
            lines.append(f"      error: {j['error']}")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1",
                    help="status socket host (default 127.0.0.1)")
    ap.add_argument("--port", type=int, required=True,
                    help="status socket port (scmd_run --status-port)")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="seconds between polls (default 1.0)")
    ap.add_argument("--once", action="store_true",
                    help="print one snapshot and exit")
    ap.add_argument("--json", action="store_true",
                    help="print raw snapshot JSON instead of the table")
    ap.add_argument("--jobs", action="store_true",
                    help="render the serve daemon's job table "
                         "(shorthand for --channel jobs)")
    ap.add_argument("--channel", default="",
                    help="snapshot channel to request (default: the run "
                         "status channel)")
    args = ap.parse_args()
    if args.jobs and args.channel:
        fail("--jobs and --channel are mutually exclusive")
    channel = "jobs" if args.jobs else args.channel

    try:
        sock = socket.create_connection((args.host, args.port), timeout=10.0)
    except OSError as e:
        fail(f"cannot connect to {args.host}:{args.port}: {e}")
    with sock:
        while True:
            try:
                snap = request_snapshot(sock, channel)
            except (OSError, ValueError, ConnectionError) as e:
                fail(f"snapshot request failed: {e}")
            if args.json:
                print(json.dumps(snap))
            elif channel == "jobs":
                print(render_jobs(snap))
            else:
                print(render(snap))
            if args.once or snap.get("finished"):
                return
            time.sleep(args.interval)
            if not args.json:
                print()


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
    except KeyboardInterrupt:
        sys.exit(130)
