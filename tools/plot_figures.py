#!/usr/bin/env python3
"""Plot the paper-figure CSVs emitted by the benchmark harness.

Usage:
    ./build/bench/bench_fig7_triplets --csv=fig7.csv
    ./build/bench/bench_fig8_granularity --csv=fig8.csv   # writes xeon_/bgq_ prefixed files
    ./build/bench/bench_fig9_scaling --csv=fig9.csv
    python3 tools/plot_figures.py fig7.csv xeon_fig8.csv bgq_fig8.csv ...

Each CSV becomes one PNG next to it.  Requires matplotlib; the harness
itself has no Python dependency — this is plotting sugar only.
"""

import csv
import sys
from pathlib import Path


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header, body = rows[0], rows[1:]
    cols = {name: [] for name in header}
    for row in body:
        for name, value in zip(header, row):
            try:
                cols[name].append(float(value))
            except ValueError:
                cols[name].append(value)
    return header, cols


def plot(path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    header, cols = read_csv(path)
    x_name = header[0]
    x = cols[x_name]

    fig, ax = plt.subplots(figsize=(6, 4.2))
    for name in header[1:]:
        ys = cols[name]
        if not ys or not isinstance(ys[0], float):
            continue
        ax.plot(x, ys, marker="o", markersize=3.5, linewidth=1.2, label=name)
    ax.set_xlabel(x_name)
    ax.set_xscale("log")
    name = Path(path).stem
    if "fig8" in name:
        ax.set_yscale("log")
        ax.set_ylabel("modeled time per step (s)")
    elif "fig9" in name:
        ax.set_ylabel("strong-scaling speedup / efficiency")
    ax.set_title(name)
    ax.grid(True, which="both", alpha=0.25)
    ax.legend(fontsize=8)
    out = Path(path).with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 1
    for path in argv[1:]:
        plot(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
