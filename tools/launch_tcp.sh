#!/usr/bin/env bash
# Launch an N-process scmd_run TCP cluster on this host.
#
#   tools/launch_tcp.sh <scmd_run> <nranks> <config> [--key=value ...]
#
# Starts one scmd_run process per rank with --transport=tcp, a shared
# rendezvous port, and per-rank log files, then waits for all of them.
# Extra flags are forwarded to every rank (rank 0 additionally gets any
# flags in SCMD_TCP_RANK0_ARGS — output artifacts like
# --checkpoint-out=... belong there, although rank 0 is the only writer
# anyway).
#
# A `--respawn` flag (before the binary) re-launches any rank that exits
# non-zero, up to SCMD_TCP_RESPAWN times (default 2) per rank.  Pair it
# with checkpointing (--checkpoint-every/--checkpoint-dir/--restore=auto
# --max-recoveries=N): the respawned rank re-enters the rendezvous the
# surviving ranks' supervisors re-run, restores the last checkpoint with
# them, and the run continues (docs/DURABILITY.md).
#
# Environment:
#   SCMD_TCP_PORT        rendezvous port (default: derived from PID)
#   SCMD_TCP_LOG_DIR     per-rank log directory (default: mktemp -d)
#   SCMD_TCP_RANK0_ARGS  extra flags for rank 0 only
#   SCMD_TCP_RESPAWN     per-rank respawn budget with --respawn (default 2)
#
# Exit status: 0 when every rank exits 0; otherwise the first non-zero
# rank status, with that rank's log echoed to stderr.
set -u

RESPAWN=0
if [ "${1:-}" = "--respawn" ]; then
    RESPAWN=${SCMD_TCP_RESPAWN:-2}
    shift
fi

if [ $# -lt 3 ]; then
    echo "usage: $0 [--respawn] <scmd_run-binary> <nranks> <config> [--key=value ...]" >&2
    exit 2
fi

BIN=$1
NRANKS=$2
CONFIG=$3
shift 3

if ! [ -x "$BIN" ]; then
    echo "launch_tcp: $BIN is not executable" >&2
    exit 2
fi
case $NRANKS in
    ''|*[!0-9]*) echo "launch_tcp: nranks must be a number" >&2; exit 2 ;;
esac

# Spread concurrent invocations (CI, parallel ctest) across ports; the
# range keeps clear of the ephemeral range used by outgoing connections.
PORT=${SCMD_TCP_PORT:-$((20000 + $$ % 10000))}
LOG_DIR=${SCMD_TCP_LOG_DIR:-$(mktemp -d)}
mkdir -p "$LOG_DIR"

echo "launch_tcp: $NRANKS ranks, rendezvous 127.0.0.1:$PORT, logs in $LOG_DIR"

PIDS=""
for RANK in $(seq 0 $((NRANKS - 1))); do
    EXTRA=""
    if [ "$RANK" -eq 0 ] && [ -n "${SCMD_TCP_RANK0_ARGS:-}" ]; then
        EXTRA=$SCMD_TCP_RANK0_ARGS
    fi
    # Each rank runs under a respawn wrapper: a crashed rank (fault
    # injection, OOM kill, ...) is re-launched and joins the re-run
    # rendezvous; rank logs append so the attempts stay visible.
    # shellcheck disable=SC2086  # EXTRA/"$@" are intentionally word-split
    (
        TRIES=0
        while :; do
            "$BIN" "$CONFIG" --transport=tcp --rank="$RANK" \
                --nranks="$NRANKS" --rendezvous=127.0.0.1:"$PORT" "$@" $EXTRA \
                >> "$LOG_DIR/rank$RANK.log" 2>&1
            RC=$?
            [ "$RC" -eq 0 ] && exit 0
            [ "$TRIES" -ge "$RESPAWN" ] && exit "$RC"
            TRIES=$((TRIES + 1))
            echo "launch_tcp: rank $RANK exited $RC; respawn $TRIES/$RESPAWN" \
                >> "$LOG_DIR/rank$RANK.log"
        done
    ) &
    PIDS="$PIDS $!"
done

STATUS=0
FAILED_RANK=-1
RANK=0
for PID in $PIDS; do
    if ! wait "$PID"; then
        RC=$?
        if [ "$STATUS" -eq 0 ]; then
            STATUS=$RC
            FAILED_RANK=$RANK
        fi
    fi
    RANK=$((RANK + 1))
done

if [ "$STATUS" -ne 0 ]; then
    echo "launch_tcp: rank $FAILED_RANK failed (exit $STATUS); its log:" >&2
    cat "$LOG_DIR/rank$FAILED_RANK.log" >&2
    exit "$STATUS"
fi

# Rank 0 carries the run report.
cat "$LOG_DIR/rank0.log"
