#!/usr/bin/env bash
# Launch an N-process scmd_run TCP cluster on this host.
#
#   tools/launch_tcp.sh <scmd_run> <nranks> <config> [--key=value ...]
#
# Starts one scmd_run process per rank with --transport=tcp, a shared
# rendezvous port, and per-rank log files, then waits for all of them.
# Extra flags are forwarded to every rank (rank 0 additionally gets any
# flags in SCMD_TCP_RANK0_ARGS — output artifacts like
# --checkpoint-out=... belong there, although rank 0 is the only writer
# anyway).
#
# Environment:
#   SCMD_TCP_PORT        rendezvous port (default: derived from PID)
#   SCMD_TCP_LOG_DIR     per-rank log directory (default: mktemp -d)
#   SCMD_TCP_RANK0_ARGS  extra flags for rank 0 only
#
# Exit status: 0 when every rank exits 0; otherwise the first non-zero
# rank status, with that rank's log echoed to stderr.
set -u

if [ $# -lt 3 ]; then
    echo "usage: $0 <scmd_run-binary> <nranks> <config> [--key=value ...]" >&2
    exit 2
fi

BIN=$1
NRANKS=$2
CONFIG=$3
shift 3

if ! [ -x "$BIN" ]; then
    echo "launch_tcp: $BIN is not executable" >&2
    exit 2
fi
case $NRANKS in
    ''|*[!0-9]*) echo "launch_tcp: nranks must be a number" >&2; exit 2 ;;
esac

# Spread concurrent invocations (CI, parallel ctest) across ports; the
# range keeps clear of the ephemeral range used by outgoing connections.
PORT=${SCMD_TCP_PORT:-$((20000 + $$ % 10000))}
LOG_DIR=${SCMD_TCP_LOG_DIR:-$(mktemp -d)}
mkdir -p "$LOG_DIR"

echo "launch_tcp: $NRANKS ranks, rendezvous 127.0.0.1:$PORT, logs in $LOG_DIR"

PIDS=""
for RANK in $(seq 0 $((NRANKS - 1))); do
    EXTRA=""
    if [ "$RANK" -eq 0 ] && [ -n "${SCMD_TCP_RANK0_ARGS:-}" ]; then
        EXTRA=$SCMD_TCP_RANK0_ARGS
    fi
    # shellcheck disable=SC2086  # EXTRA/"$@" are intentionally word-split
    "$BIN" "$CONFIG" --transport=tcp --rank="$RANK" --nranks="$NRANKS" \
        --rendezvous=127.0.0.1:"$PORT" "$@" $EXTRA \
        > "$LOG_DIR/rank$RANK.log" 2>&1 &
    PIDS="$PIDS $!"
done

STATUS=0
FAILED_RANK=-1
RANK=0
for PID in $PIDS; do
    if ! wait "$PID"; then
        RC=$?
        if [ "$STATUS" -eq 0 ]; then
            STATUS=$RC
            FAILED_RANK=$RANK
        fi
    fi
    RANK=$((RANK + 1))
done

if [ "$STATUS" -ne 0 ]; then
    echo "launch_tcp: rank $FAILED_RANK failed (exit $STATUS); its log:" >&2
    cat "$LOG_DIR/rank$FAILED_RANK.log" >&2
    exit "$STATUS"
fi

# Rank 0 carries the run report.
cat "$LOG_DIR/rank0.log"
