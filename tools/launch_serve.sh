#!/usr/bin/env bash
# Launch an N-process scmd_serve TCP pool on this host (docs/SERVICE.md).
#
#   tools/launch_serve.sh <scmd_serve> <nranks> [--key=value ...]
#
# Starts one scmd_serve process per pool rank with --transport=tcp and a
# shared rendezvous port: rank 0 is the daemon (it gets the extra flags —
# --port, --status-port, --dir, resource caps, --metrics-out), ranks 1..
# N-1 are the warm workers.  The daemon's client and status ports are
# echoed once they appear in rank 0's log and also written to
# $LOG_DIR/client_port and $LOG_DIR/status_port, so scripts can submit
# jobs while the pool runs (the script itself blocks until the daemon is
# shut down via `scmd_client shutdown`).
#
# Environment:
#   SCMD_SERVE_PORT     rendezvous port (default: derived from PID)
#   SCMD_SERVE_LOG_DIR  per-rank log directory (default: mktemp -d)
#
# Exit status: 0 when every rank exits 0; otherwise the first non-zero
# rank status, with that rank's log echoed to stderr.
set -u

if [ $# -lt 2 ]; then
    echo "usage: $0 <scmd_serve-binary> <nranks> [--key=value ...]" >&2
    exit 2
fi

BIN=$1
NRANKS=$2
shift 2

if ! [ -x "$BIN" ]; then
    echo "launch_serve: $BIN is not executable" >&2
    exit 2
fi
case $NRANKS in
    ''|*[!0-9]*) echo "launch_serve: nranks must be a number" >&2; exit 2 ;;
esac
if [ "$NRANKS" -lt 2 ]; then
    echo "launch_serve: pool needs >= 2 ranks (daemon + worker)" >&2
    exit 2
fi

# Spread concurrent invocations (CI, parallel ctest) across ports; the
# range keeps clear of the ephemeral range used by outgoing connections.
PORT=${SCMD_SERVE_PORT:-$((20000 + $$ % 10000))}
LOG_DIR=${SCMD_SERVE_LOG_DIR:-$(mktemp -d)}
mkdir -p "$LOG_DIR"
rm -f "$LOG_DIR/client_port" "$LOG_DIR/status_port"

echo "launch_serve: $NRANKS ranks, rendezvous 127.0.0.1:$PORT, logs in $LOG_DIR"

PIDS=""
for RANK in $(seq 0 $((NRANKS - 1))); do
    if [ "$RANK" -eq 0 ]; then
        "$BIN" --transport=tcp --rank=0 --nranks="$NRANKS" \
            --rendezvous=127.0.0.1:"$PORT" "$@" \
            > "$LOG_DIR/rank0.log" 2>&1 &
    else
        "$BIN" --transport=tcp --rank="$RANK" --nranks="$NRANKS" \
            --rendezvous=127.0.0.1:"$PORT" \
            > "$LOG_DIR/rank$RANK.log" 2>&1 &
    fi
    PIDS="$PIDS $!"
done

# Surface the daemon's ports as soon as rank 0 announces them.  A pool
# that fails to bootstrap never prints one; bail out with its log after
# a bounded wait instead of hanging the caller.
TRIES=0
while :; do
    CLIENT_PORT=$(sed -n 's/^# serve: client port \([0-9]*\).*/\1/p' \
        "$LOG_DIR/rank0.log" 2>/dev/null | head -n 1)
    if [ -n "$CLIENT_PORT" ]; then
        echo "$CLIENT_PORT" > "$LOG_DIR/client_port"
        echo "launch_serve: client port $CLIENT_PORT"
        STATUS_PORT=$(sed -n 's/^# serve: status port \([0-9]*\).*/\1/p' \
            "$LOG_DIR/rank0.log" | head -n 1)
        if [ -n "$STATUS_PORT" ]; then
            echo "$STATUS_PORT" > "$LOG_DIR/status_port"
            echo "launch_serve: status port $STATUS_PORT"
        fi
        break
    fi
    if ! kill -0 $PIDS 2>/dev/null; then
        echo "launch_serve: pool died during bootstrap; rank 0 log:" >&2
        cat "$LOG_DIR/rank0.log" >&2
        exit 1
    fi
    TRIES=$((TRIES + 1))
    if [ "$TRIES" -ge 300 ]; then
        echo "launch_serve: no client port after 30s; rank 0 log:" >&2
        cat "$LOG_DIR/rank0.log" >&2
        kill $PIDS 2>/dev/null
        exit 1
    fi
    sleep 0.1
done

STATUS=0
FAILED_RANK=-1
RANK=0
for PID in $PIDS; do
    if ! wait "$PID"; then
        RC=$?
        if [ "$STATUS" -eq 0 ]; then
            STATUS=$RC
            FAILED_RANK=$RANK
        fi
    fi
    RANK=$((RANK + 1))
done

if [ "$STATUS" -ne 0 ]; then
    echo "launch_serve: rank $FAILED_RANK failed (exit $STATUS); its log:" >&2
    cat "$LOG_DIR/rank$FAILED_RANK.log" >&2
    exit "$STATUS"
fi

# Rank 0 carries the service report.
cat "$LOG_DIR/rank0.log"
