#!/usr/bin/env python3
"""Diff a bench --json-out run against a committed baseline.

The benches (bench_walltime, bench_comm) write machine-readable
summaries with --json-out=FILE; baselines captured the same way live in
results/.  This tool compares a fresh run against a baseline metric by
metric, direction-aware (lower is better for ms_per_step / us_per_msg,
higher is better for steps_per_sec / msg_rate / bandwidth_mbps), and
can gate on a maximum regression percentage.

google-benchmark output (bench_micro --benchmark_out=FILE) is also
accepted on either side: its {"benchmarks": [...]} list is normalised
into a case map keyed by benchmark name, carrying real_time_ns (lower
is better) and items_per_second (higher is better).

Usage:
    bench_report.py --baseline results/BENCH_walltime.json \
                    --current bench_walltime.json \
                    [--max-regress 25]

--max-regress N exits non-zero when any metric regressed by more than
N percent.  Without it the report is informational (exit 0 as long as
the two files are comparable).  Absolute numbers are host-dependent;
the gate is meant for same-host comparisons (a CI runner against its
own earlier artifact), not cross-machine ones.

Exits: 0 OK, 1 regression beyond --max-regress, 2 files not comparable.
"""

import argparse
import json
import sys

# metric name -> True when larger values are better.
HIGHER_IS_BETTER = {
    "ms_per_step": False,
    "us_per_msg": False,
    "search_per_step": False,
    "real_time_ns": False,
    "steps_per_sec": True,
    "msg_rate": True,
    "bandwidth_mbps": True,
    "items_per_second": True,
}


def fail(msg, code=2):
    print(f"bench_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def normalize_gbench(doc, path):
    """google-benchmark --benchmark_out JSON -> bench-summary shape.

    Per-iteration runs become cases keyed by benchmark name; aggregate
    rows (mean/median/stddev from --benchmark_repetitions) are skipped
    so repeated runs gate on the same keys as single ones.
    """
    cases = {}
    for run in doc["benchmarks"]:
        if run.get("run_type", "iteration") != "iteration":
            continue
        if not isinstance(run.get("name"), str):
            fail(f"{path}: benchmark entry without a name")
        # Times are normalised to ns regardless of the run's time_unit.
        unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            run.get("time_unit", "ns"))
        if unit_ns is None:
            fail(f"{path}: unknown time_unit in {run['name']!r}")
        case = {"real_time_ns": run["real_time"] * unit_ns}
        if "items_per_second" in run:
            case["items_per_second"] = run["items_per_second"]
        cases[run["name"]] = case
    return {"bench": "google-benchmark", "variants": cases}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        return normalize_gbench(doc, path)
    if not isinstance(doc, dict) or "bench" not in doc:
        fail(f"{path}: not a bench summary (missing 'bench' key)")
    return doc


def case_map(doc, path):
    """The per-case metric dict: 'variants' (walltime) or 'cases' (comm)."""
    for key in ("variants", "cases"):
        if key in doc:
            if not isinstance(doc[key], dict):
                fail(f"{path}: {key!r} is not an object")
            return doc[key]
    fail(f"{path}: no 'variants' or 'cases' section")


def compare(baseline, current):
    """Yield (case, metric, base, cur, regress_pct) rows.

    regress_pct > 0 means the current run is worse; direction-aware.
    """
    rows = []
    for case in sorted(baseline):
        if case not in current:
            rows.append((case, "<missing in current>", None, None, None))
            continue
        for metric, base in sorted(baseline[case].items()):
            if metric not in current[case]:
                rows.append((case, metric, base, None, None))
                continue
            cur = current[case][metric]
            if not isinstance(base, (int, float)) or \
                    not isinstance(cur, (int, float)):
                fail(f"{case}.{metric}: non-numeric value")
            if metric not in HIGHER_IS_BETTER:
                continue  # unknown metric: carried but not gated
            if base == 0:
                regress = 0.0
            elif HIGHER_IS_BETTER[metric]:
                regress = (base - cur) / base * 100.0
            else:
                regress = (cur - base) / base * 100.0
            rows.append((case, metric, base, cur, regress))
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (results/BENCH_*.json)")
    ap.add_argument("--current", required=True,
                    help="fresh --json-out summary to compare")
    ap.add_argument("--max-regress", type=float, default=None,
                    help="fail (exit 1) when any metric regressed by more "
                         "than this percentage")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    if base_doc["bench"] != cur_doc["bench"]:
        fail(f"bench kinds differ: {base_doc['bench']!r} vs "
             f"{cur_doc['bench']!r}")

    rows = compare(case_map(base_doc, args.baseline),
                   case_map(cur_doc, args.current))
    if not rows:
        fail("no comparable metrics")

    print(f"bench_report: {base_doc['bench']}  "
          f"baseline={args.baseline}  current={args.current}")
    print(f"{'case':<24} {'metric':<16} {'baseline':>12} {'current':>12} "
          f"{'regress %':>10}")
    worst = None
    for case, metric, base, cur, regress in rows:
        if regress is None:
            print(f"{case:<24} {metric:<16} "
                  f"{'-' if base is None else f'{base:>12.4g}'} "
                  f"{'MISSING':>12}")
            fail(f"{case}.{metric}: present in baseline, absent in current")
        marker = " <-- regressed" if args.max_regress is not None and \
            regress > args.max_regress else ""
        print(f"{case:<24} {metric:<16} {base:>12.4g} {cur:>12.4g} "
              f"{regress:>+10.1f}{marker}")
        if worst is None or regress > worst[4]:
            worst = (case, metric, base, cur, regress)

    if worst is not None:
        print(f"bench_report: worst regression: {worst[0]}.{worst[1]} "
              f"{worst[4]:+.1f}%")
    if args.max_regress is not None and worst is not None and \
            worst[4] > args.max_regress:
        print(f"bench_report: FAIL: {worst[0]}.{worst[1]} regressed "
              f"{worst[4]:+.1f}% (> {args.max_regress:g}% allowed)",
              file=sys.stderr)
        sys.exit(1)
    print("bench_report: OK")


if __name__ == "__main__":
    main()
