#!/usr/bin/env python3
"""scmd_lint: project-specific static checks (docs/CHECKING.md).

Rules (each a bug class the compiler alone does not catch):

  raw-tag           An integer-literal tag in a send()/recv() call outside
                    src/net/tags.hpp.  Every wire tag must resolve to the
                    central registry so the compile-time disjointness
                    proof covers it.
  mutex-annotation  A std::mutex / std::recursive_mutex /
                    std::condition_variable declaration outside
                    src/support/thread_safety.hpp.  Concurrent code uses
                    the annotated scmd::Mutex family so Clang's
                    -Wthread-safety analysis sees every acquisition.
  naked-new         A `new` expression.  Ownership goes through
                    containers and std::make_unique.
  std-rand          std::rand()/srand().  Randomness goes through
                    <random> engines seeded explicitly (reproducibility).
  unpack-try        unpack<T>() applied to a transport recv() without a
                    nearby shape validation (SCMD_REQUIRE / try) — a
                    malformed frame from the wire must fail loudly at the
                    receive site, not corrupt state downstream.
  tsa-escape        SCMD_NO_THREAD_SAFETY_ANALYSIS inside src/net,
                    src/obs, or src/parallel — the zero-escape-hatch
                    directories (an escape there hides exactly the bugs
                    the analysis exists to catch).
  service-tags      A send()/recv() in src/serve whose tag is neither a
                    `tags::kSvc*` constant nor the subset layer's
                    pass-through `tag` variable.  The service control
                    plane owns exactly the kSvcBase window
                    (docs/SERVICE.md); borrowing an MD channel would race
                    the jobs the daemon is multiplexing.
  tag-docs          The tag table in docs/TRANSPORT.md disagrees with the
                    kRegistry in src/net/tags.hpp (docs must not drift
                    from the code).

Suppressions: tools/lint/lint_suppressions.txt holds `rule:path` lines
(repo-relative path, whole-file, per-rule) with a justification comment
above each.  Keep it short.

Usage:
  scmd_lint.py [--root DIR] [--list-rules] [paths...]

With no paths, lints the whole tree under --root (default: the repo root
two levels above this script).  Paths are repo-relative or absolute.
Exit status: 0 clean, 1 findings, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Callable, Iterable, NamedTuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

SOURCE_DIRS = ("src", "apps", "bench", "tests", "examples")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")

TAGS_HPP = "src/net/tags.hpp"
THREAD_SAFETY_HPP = "src/support/thread_safety.hpp"
TRANSPORT_MD = "docs/TRANSPORT.md"
SUPPRESSIONS = "tools/lint/lint_suppressions.txt"

# Directories whose recv() paths take frames straight off the wire.
RECEIVE_PATH_DIRS = ("src/net", "src/parallel", "src/balance", "src/ckpt",
                     "src/obs", "src/serve")

# The service control plane (docs/SERVICE.md) and its reserved window.
SERVE_DIR = "src/serve"

# The acceptance bar: no thread-safety escape hatches in these.
NO_ESCAPE_DIRS = ("src/net", "src/obs", "src/parallel")


class Finding(NamedTuple):
    rule: str
    path: str  # repo-relative
    line: int  # 1-based
    message: str


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines
    and column positions so findings keep exact line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # str | chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def split_top_level_args(argtext: str) -> list[str]:
    args, depth, start = [], 0, 0
    for i, c in enumerate(argtext):
        if c in "([{<":
            # `<` is approximate (templates vs less-than); good enough for
            # the literal-in-second-argument question this rule asks.
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            args.append(argtext[start:i])
            start = i + 1
    args.append(argtext[start:])
    return args


def balanced_paren_span(text: str, open_at: int) -> int:
    """Index one past the `)` matching the `(` at open_at, or -1."""
    depth = 0
    for i in range(open_at, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


INT_LITERAL = re.compile(r"^\s*(?:0[xX][0-9a-fA-F]+|\d+)\s*$")
SEND_RECV = re.compile(r"(?<![\w:])(send|recv)\s*\(")


def rule_raw_tag(path: str, text: str) -> Iterable[Finding]:
    if path == TAGS_HPP:
        return
    code = strip_comments_and_strings(text)
    for m in SEND_RECV.finditer(code):
        # ::send / ::recv are the socket syscalls, not Transport calls.
        before = code[:m.start()].rstrip()
        if before.endswith("::"):
            continue
        open_at = code.index("(", m.end() - 1)
        close = balanced_paren_span(code, open_at)
        if close < 0:
            continue
        args = split_top_level_args(code[open_at + 1:close - 1])
        # send(dst, tag, payload) / recv(src, tag): tag is argument 2.
        if len(args) < 2:
            continue
        if INT_LITERAL.match(args[1]):
            yield Finding(
                "raw-tag", path, line_of(code, m.start()),
                f"{m.group(1)}() with raw integer tag {args[1].strip()}; "
                f"use a constant from {TAGS_HPP}")


MUTEX_DECL = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_)?mutex\b"
    r"|\bstd\s*::\s*condition_variable(?:_any)?\b")


def rule_mutex_annotation(path: str, text: str) -> Iterable[Finding]:
    if path == THREAD_SAFETY_HPP:
        return
    code = strip_comments_and_strings(text)
    for m in MUTEX_DECL.finditer(code):
        yield Finding(
            "mutex-annotation", path, line_of(code, m.start()),
            f"{m.group(0)} outside {THREAD_SAFETY_HPP}; use scmd::Mutex / "
            "RecursiveMutex / CondVar so the thread-safety analysis sees "
            "the capability")


NEW_EXPR = re.compile(r"(?<![\w.:>])new(?![\w])")


def rule_naked_new(path: str, text: str) -> Iterable[Finding]:
    code = strip_comments_and_strings(text)
    for m in NEW_EXPR.finditer(code):
        # Skip preprocessor directives (`#include <new>`).
        line_start = code.rfind("\n", 0, m.start()) + 1
        if code[line_start:m.start()].lstrip().startswith("#"):
            continue
        # `operator new` is the allocator primitive (e.g. the over-aligned
        # allocator in support/aligned.hpp), not an ownership leak.
        if code[:m.start()].rstrip().endswith("operator"):
            continue
        yield Finding(
            "naked-new", path, line_of(code, m.start()),
            "naked new; use std::make_unique or a container")


STD_RAND = re.compile(r"\bstd\s*::\s*s?rand\b|(?<![\w:.])s?rand\s*\(")


def rule_std_rand(path: str, text: str) -> Iterable[Finding]:
    code = strip_comments_and_strings(text)
    for m in STD_RAND.finditer(code):
        yield Finding(
            "std-rand", path, line_of(code, m.start()),
            "std::rand/srand; use a <random> engine with an explicit seed")


UNPACK_OF_RECV = re.compile(r"\bunpack\s*<")
VALIDATION = re.compile(r"\bSCMD_REQUIRE\b|\btry\b|\bcatch\b")
UNPACK_WINDOW = 4  # lines after the unpack that may carry the validation


def rule_unpack_try(path: str, text: str) -> Iterable[Finding]:
    if not path.startswith(RECEIVE_PATH_DIRS):
        return
    code = strip_comments_and_strings(text)
    lines = code.split("\n")
    for m in UNPACK_OF_RECV.finditer(code):
        open_at = code.find("(", m.end())
        if open_at < 0:
            continue
        close = balanced_paren_span(code, open_at)
        if close < 0 or "recv" not in code[open_at:close]:
            continue
        ln = line_of(code, m.start())
        window = "\n".join(lines[max(0, ln - 2):ln + UNPACK_WINDOW])
        if not VALIDATION.search(window):
            yield Finding(
                "unpack-try", path, ln,
                "unpack of a transport recv() without a nearby shape "
                "validation (SCMD_REQUIRE within "
                f"{UNPACK_WINDOW} lines, or try/catch)")


SVC_TAG_ARG = re.compile(r"^\s*tags\s*::\s*kSvc\w+\s*$")
# A bare `tag` (the subset layer's verbatim forward) or the `int tag`
# parameter of a send/recv *declaration* — declarations aren't call sites.
PASS_THROUGH_TAG_ARG = re.compile(r"^\s*(?:int\s+)?tag\s*$")


def rule_service_tags(path: str, text: str) -> Iterable[Finding]:
    if not path.startswith(SERVE_DIR):
        return
    code = strip_comments_and_strings(text)
    for m in SEND_RECV.finditer(code):
        before = code[:m.start()].rstrip()
        if before.endswith("::"):  # socket syscalls
            continue
        open_at = code.index("(", m.end() - 1)
        close = balanced_paren_span(code, open_at)
        if close < 0:
            continue
        args = split_top_level_args(code[open_at + 1:close - 1])
        if len(args) < 2:
            continue
        tag_arg = args[1]
        # The subset transport remaps ranks and forwards the caller's tag
        # verbatim — that pass-through is the one non-kSvc tag allowed.
        if SVC_TAG_ARG.match(tag_arg) or PASS_THROUGH_TAG_ARG.match(tag_arg):
            continue
        yield Finding(
            "service-tags", path, line_of(code, m.start()),
            f"{m.group(1)}() in {SERVE_DIR} with tag {tag_arg.strip()!r}; "
            "the service control plane must use tags::kSvc* (or forward "
            "the caller's `tag` in the subset remap layer)")


def rule_tsa_escape(path: str, text: str) -> Iterable[Finding]:
    if path == THREAD_SAFETY_HPP or not path.startswith(NO_ESCAPE_DIRS):
        return
    code = strip_comments_and_strings(text)
    for m in re.finditer(r"\bSCMD_NO_THREAD_SAFETY_ANALYSIS\b", code):
        yield Finding(
            "tsa-escape", path, line_of(code, m.start()),
            "thread-safety escape hatch in a zero-escape directory "
            f"({', '.join(NO_ESCAPE_DIRS)}); fix the discipline instead")


# ---------------------------------------------------------------------------
# tag-docs: docs/TRANSPORT.md table vs src/net/tags.hpp kRegistry.

CONST_DEF = re.compile(
    r"inline\s+constexpr\s+int\s+(k\w+)\s*=\s*([0-9]+|0[xX][0-9a-fA-F]+)\s*;")
REGISTRY_ENTRY = re.compile(
    r'\{\s*"([^"]+)"\s*,\s*(\w+)\s*,\s*(\w+)\s*\}')


def parse_tags_hpp(text: str) -> dict[str, tuple[int, int]]:
    """name -> (base, width) from the kRegistry array."""
    consts: dict[str, int] = {}
    for m in CONST_DEF.finditer(text):
        consts[m.group(1)] = int(m.group(2), 0)
    arr = re.search(r"kRegistry\[\]\s*=\s*\{(.*?)\n\};", text, re.S)
    if arr is None:
        raise ValueError(f"no kRegistry array found in {TAGS_HPP}")
    registry: dict[str, tuple[int, int]] = {}
    for m in REGISTRY_ENTRY.finditer(arr.group(1)):
        name, base_tok, width_tok = m.groups()

        def resolve(tok: str) -> int:
            if tok in consts:
                return consts[tok]
            return int(tok, 0)

        registry[name] = (resolve(base_tok), resolve(width_tok))
    if not registry:
        raise ValueError(f"kRegistry in {TAGS_HPP} parsed empty")
    return registry


TABLE_ROW = re.compile(
    r"^\|\s*`([^`]+)`\s*\|\s*([0-9]+)(?:\s*[-–]\s*([0-9]+))?\s*\|")


def parse_transport_md(text: str) -> dict[str, tuple[int, int]]:
    """name -> (base, width) from the markdown tag table (rows of the
    form `| `name` | base[-last] | ... |`)."""
    table: dict[str, tuple[int, int]] = {}
    for line in text.split("\n"):
        m = TABLE_ROW.match(line.strip())
        if not m:
            continue
        name, base, last = m.group(1), int(m.group(2)), m.group(3)
        width = (int(last) - int(m.group(2)) + 1) if last else 1
        table[name] = (base, width)
    return table


def rule_tag_docs(root: str) -> Iterable[Finding]:
    tags_path = os.path.join(root, TAGS_HPP)
    docs_path = os.path.join(root, TRANSPORT_MD)
    try:
        with open(tags_path, encoding="utf-8") as f:
            registry = parse_tags_hpp(f.read())
    except (OSError, ValueError) as e:
        yield Finding("tag-docs", TAGS_HPP, 1, str(e))
        return
    try:
        with open(docs_path, encoding="utf-8") as f:
            documented = parse_transport_md(f.read())
    except OSError as e:
        yield Finding("tag-docs", TRANSPORT_MD, 1, str(e))
        return
    if not documented:
        yield Finding("tag-docs", TRANSPORT_MD, 1,
                      "no tag table found (rows `| `name` | base[-last] |`)")
        return
    for name, (base, width) in sorted(registry.items()):
        if name not in documented:
            yield Finding("tag-docs", TRANSPORT_MD, 1,
                          f"registered tag range `{name}` ({base}, width "
                          f"{width}) is not documented")
        elif documented[name] != (base, width):
            dbase, dwidth = documented[name]
            yield Finding("tag-docs", TRANSPORT_MD, 1,
                          f"`{name}` documented as ({dbase}, width {dwidth}) "
                          f"but registered as ({base}, width {width})")
    for name in sorted(set(documented) - set(registry)):
        yield Finding("tag-docs", TRANSPORT_MD, 1,
                      f"documented tag range `{name}` is not in the registry")


# ---------------------------------------------------------------------------

PER_FILE_RULES: dict[str, Callable[[str, str], Iterable[Finding]]] = {
    "raw-tag": rule_raw_tag,
    "mutex-annotation": rule_mutex_annotation,
    "naked-new": rule_naked_new,
    "std-rand": rule_std_rand,
    "unpack-try": rule_unpack_try,
    "service-tags": rule_service_tags,
    "tsa-escape": rule_tsa_escape,
}

TREE_RULES = {"tag-docs": rule_tag_docs}

ALL_RULES = sorted(list(PER_FILE_RULES) + list(TREE_RULES))


def load_suppressions(root: str) -> set[tuple[str, str]]:
    path = os.path.join(root, SUPPRESSIONS)
    entries: set[tuple[str, str]] = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for ln, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            rule, sep, rel = line.partition(":")
            if not sep or rule not in ALL_RULES:
                raise ValueError(
                    f"{SUPPRESSIONS}:{ln}: expected `rule:path` with rule "
                    f"in {ALL_RULES}, got {line!r}")
            entries.add((rule, rel.strip()))
    return entries


def iter_source_files(root: str) -> Iterable[str]:
    for top in SOURCE_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def lint_files(root: str, rel_paths: Iterable[str]) -> list[Finding]:
    findings: list[Finding] = []
    for rel in rel_paths:
        try:
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
        except OSError as e:
            findings.append(Finding("internal", rel, 1, str(e)))
            continue
        for rule_fn in PER_FILE_RULES.values():
            findings.extend(rule_fn(rel.replace(os.sep, "/"), text))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="scmd_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--no-suppressions", action="store_true",
                        help="ignore the committed suppression file")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: whole tree)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0

    root = os.path.abspath(args.root)
    if args.paths:
        rels = []
        for p in args.paths:
            ap = os.path.abspath(p)
            rels.append(os.path.relpath(ap, root))
        whole_tree = False
    else:
        rels = list(iter_source_files(root))
        whole_tree = True

    try:
        suppressed = (set() if args.no_suppressions
                      else load_suppressions(root))
    except ValueError as e:
        print(f"scmd_lint: {e}", file=sys.stderr)
        return 2

    findings = lint_files(root, rels)
    if whole_tree:
        findings.extend(TREE_RULES["tag-docs"](root))

    kept = [f for f in findings if (f.rule, f.path) not in suppressed]
    for f in sorted(kept):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if kept:
        print(f"scmd_lint: {len(kept)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
