// scmd_client — thin CLI for the MD-as-a-service daemon
// (docs/SERVICE.md).
//
//   scmd_client submit  <config-file> [--host=H] [--port=P]
//               [--priority=N] [--wait] [--stream]
//               [--metrics-out=PATH] [--checkpoint-out=PATH]
//               [--resume=JOB_ID] [--from-seq=N]
//   scmd_client poll    <job-id>  [--host=H] [--port=P]
//   scmd_client cancel  <job-id>  [--host=H] [--port=P]
//   scmd_client jobs              [--host=H] [--port=P]
//   scmd_client shutdown          [--host=H] [--port=P]
//
// submit prints `job <id> submitted`.  With --stream it follows the
// job's chunk stream to completion: metrics chunks append to
// --metrics-out (or stdout), and with --checkpoint-out the final-state
// checkpoint chunk (needs --checkpoint-out at submit time, which turns
// the chunk on) is written there — byte-identical to what scmd_run
// would have produced for the same config.  --wait polls instead of
// streaming.  Exit status: 0 for a done job, 3 cancelled, 4 failed.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "support/error.hpp"

namespace {

using namespace scmd;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int priority = 0;
  bool wait = false;
  bool stream = false;
  std::string metrics_out;
  std::string checkpoint_out;
  std::int64_t resume = 0;
  std::int64_t from_seq = 0;
};

void print_status(const serve::JobStatus& st) {
  std::printf("job %lld: %s", static_cast<long long>(st.job_id),
              serve::job_state_name(st.state));
  if (st.steps_total > 0)
    std::printf("  steps %lld/%lld", static_cast<long long>(st.steps_done),
                static_cast<long long>(st.steps_total));
  if (st.chunks > 0)
    std::printf("  chunks %lld", static_cast<long long>(st.chunks));
  if (st.steps_per_sec > 0.0) std::printf("  %.1f steps/s", st.steps_per_sec);
  if (!st.pool_ranks.empty()) {
    std::printf("  ranks [");
    for (std::size_t i = 0; i < st.pool_ranks.size(); ++i)
      std::printf("%s%d", i > 0 ? "," : "", st.pool_ranks[i]);
    std::printf("]");
  }
  if (st.state == serve::JobState::kDone)
    std::printf("  E_pot = %.6f", st.potential_energy);
  if (!st.error.empty()) std::printf("  (%s)", st.error.c_str());
  std::printf("\n");
}

int exit_code(serve::JobState state) {
  if (state == serve::JobState::kDone) return 0;
  if (state == serve::JobState::kCancelled) return 3;
  return 4;
}

/// Follow the chunk stream to the terminal marker, demuxing metrics
/// lines and the final checkpoint into their output files.
int stream_job(serve::ClientConnection& conn, std::int64_t job_id,
               const Options& opt) {
  std::ofstream metrics;
  if (!opt.metrics_out.empty()) {
    metrics.open(opt.metrics_out, std::ios::out | std::ios::trunc);
    SCMD_REQUIRE(metrics.good(), "cannot open " + opt.metrics_out);
  }
  const serve::StreamEnd end = conn.stream(
      job_id, opt.from_seq, [&](const serve::ChunkMsg& chunk) {
        if (chunk.kind == serve::ChunkKind::kMetrics) {
          if (metrics.is_open()) {
            metrics.write(
                reinterpret_cast<const char*>(chunk.payload.data()),
                static_cast<std::streamsize>(chunk.payload.size()));
            metrics.flush();
          } else {
            std::fwrite(chunk.payload.data(), 1, chunk.payload.size(),
                        stdout);
            std::fflush(stdout);
          }
          return;
        }
        if (chunk.kind == serve::ChunkKind::kCheckpoint &&
            !opt.checkpoint_out.empty()) {
          std::ofstream out(opt.checkpoint_out,
                            std::ios::out | std::ios::binary |
                                std::ios::trunc);
          SCMD_REQUIRE(out.good(), "cannot open " + opt.checkpoint_out);
          out.write(reinterpret_cast<const char*>(chunk.payload.data()),
                    static_cast<std::streamsize>(chunk.payload.size()));
          std::printf("# checkpoint chunk (step %lld) -> %s\n",
                      static_cast<long long>(chunk.step),
                      opt.checkpoint_out.c_str());
        }
      });
  std::printf("job %lld: %s", static_cast<long long>(end.job_id),
              serve::job_state_name(end.state));
  if (!end.error.empty()) std::printf("  (%s)", end.error.c_str());
  std::printf("\n");
  return exit_code(end.state);
}

int wait_job(serve::ClientConnection& conn, std::int64_t job_id) {
  for (;;) {
    const serve::JobStatus st = conn.poll(job_id);
    if (serve::job_state_terminal(st.state)) {
      print_status(st);
      return exit_code(st.state);
    }
    ::usleep(100 * 1000);
  }
}

int run(const std::string& verb, const std::string& operand,
        const Options& opt) {
  serve::ClientConnection conn(opt.host, opt.port);
  if (verb == "submit") {
    std::ifstream in(operand);
    SCMD_REQUIRE(in.good(), "cannot read config file " + operand);
    std::ostringstream text;
    text << in.rdbuf();
    serve::SubmitRequest req;
    req.config_text = text.str();
    req.priority = opt.priority;
    req.want_checkpoint = !opt.checkpoint_out.empty();
    req.resume_job = opt.resume;
    const std::int64_t id = conn.submit(req);
    std::printf("job %lld submitted\n", static_cast<long long>(id));
    std::fflush(stdout);
    if (opt.stream) return stream_job(conn, id, opt);
    if (opt.wait) return wait_job(conn, id);
    return 0;
  }
  if (verb == "poll" || verb == "cancel") {
    const std::int64_t id = std::stoll(operand);
    const serve::JobStatus st =
        verb == "poll" ? conn.poll(id) : conn.cancel(id);
    print_status(st);
    return 0;
  }
  if (verb == "stream") {
    return stream_job(conn, std::stoll(operand), opt);
  }
  if (verb == "jobs") {
    std::printf("%s\n", conn.jobs().c_str());
    return 0;
  }
  if (verb == "shutdown") {
    conn.shutdown();
    std::printf("shutdown requested\n");
    return 0;
  }
  std::fprintf(stderr,
               "error: unknown verb '%s' (submit | poll | stream | cancel | "
               "jobs | shutdown)\n",
               verb.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string verb;
  std::string operand;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (arg == "--wait") {
        opt.wait = true;
        continue;
      }
      if (arg == "--stream") {
        opt.stream = true;
        continue;
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos || eq == 2) {
        std::fprintf(stderr, "error: flags take the form --key=value: %s\n",
                     arg.c_str());
        return 2;
      }
      const std::string key = arg.substr(2, eq - 2);
      const std::string value = arg.substr(eq + 1);
      try {
        if (key == "host") {
          opt.host = value;
        } else if (key == "port") {
          opt.port = std::stoi(value);
        } else if (key == "priority") {
          opt.priority = std::stoi(value);
        } else if (key == "metrics-out") {
          opt.metrics_out = value;
        } else if (key == "checkpoint-out") {
          opt.checkpoint_out = value;
        } else if (key == "resume") {
          opt.resume = std::stoll(value);
        } else if (key == "from-seq") {
          opt.from_seq = std::stoll(value);
        } else if (key == "wait") {
          opt.wait = value != "0" && value != "false";
        } else if (key == "stream") {
          opt.stream = value != "0" && value != "false";
        } else {
          std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
          return 2;
        }
      } catch (const std::exception&) {
        std::fprintf(stderr, "error: bad value for --%s: %s\n", key.c_str(),
                     value.c_str());
        return 2;
      }
    } else if (verb.empty()) {
      verb = arg;
    } else if (operand.empty()) {
      operand = arg;
    } else {
      std::fprintf(stderr, "error: too many positional arguments\n");
      return 2;
    }
  }
  if (verb.empty() ||
      ((verb == "submit" || verb == "poll" || verb == "stream" ||
        verb == "cancel") &&
       operand.empty())) {
    std::fprintf(stderr,
                 "usage: %s <submit <config> | poll <id> | stream <id> | "
                 "cancel <id> | jobs | shutdown> [--host=H --port=P ...]\n",
                 argv[0]);
    return 2;
  }
  if (opt.port == 0) {
    std::fprintf(stderr, "error: --port is required (the daemon prints "
                         "its client port at startup)\n");
    return 2;
  }
  try {
    return run(verb, operand, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
