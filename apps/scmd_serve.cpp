// scmd_serve — persistent MD-as-a-service daemon (docs/SERVICE.md).
//
// Bootstraps a warm rank pool ONCE, then serves many jobs over the
// client session protocol until a shutdown request drains the queue.
//
//   inproc pool (one process, worker threads):
//     ./scmd_serve --workers=7 [--port=0] [--status-port=0]
//                  [--dir=serve_jobs] [--max-atoms=N] [--max-steps=N]
//                  [--max-walltime-s=S] [--metrics-out=serve.jsonl]
//
//   tcp pool (one process per pool rank, tools/launch_serve.sh):
//     rank 0:   ./scmd_serve --transport=tcp --rank=0 --nranks=8 \
//                  --rendezvous=host:port [client flags as above]
//     rank i>0: ./scmd_serve --transport=tcp --rank=i --nranks=8 \
//                  --rendezvous=host:port
//
// On startup the daemon prints one machine-readable line per bound
// port:
//     # serve: client port <P>
//     # serve: status port <Q>        (with --status-port)
// then blocks until a client sends shutdown (scmd_client shutdown).
//
// Flags:
//   --workers=N        inproc pool size (pool has N worker ranks + the
//                      daemon rank; every job runs on a subset)
//   --port=P           client protocol port (default 0 = ephemeral)
//   --status-port=P    serve "status"/"jobs" channels for
//                      tools/scmd_top.py --jobs (default: off)
//   --dir=PATH         job artifact root: per-job checkpoint dirs,
//                      traces, and resume-by-id live here (default: off)
//   --max-atoms=N      reject jobs larger than N atoms (default: no cap)
//   --max-steps=N      reject jobs longer than N steps (default: no cap)
//   --max-walltime-s=S cap every job's walltime at S seconds
//   --metrics-out=PATH daemon-level serve.* metrics JSONL
//   --transport=...    inproc (default) | tcp
//   --rank/--nranks/--rendezvous/--advertise-host/--connect-timeout-s
//                      tcp pool bootstrap, exactly as scmd_run

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "serve/daemon.hpp"
#include "serve/worker.hpp"
#include "support/config.hpp"
#include "support/error.hpp"

namespace {

using namespace scmd;

int serve_main(const Config& cfg) {
  cfg.require_known({"workers", "port", "status_port", "dir", "max_atoms",
                     "max_steps", "max_walltime_s", "metrics_out",
                     "transport", "rank", "nranks", "rendezvous",
                     "advertise_host", "connect_timeout_s"});

  serve::DaemonConfig dcfg;
  dcfg.client_port = static_cast<int>(cfg.get_int("port", 0));
  dcfg.status_port =
      cfg.has("status_port")
          ? static_cast<int>(cfg.get_int("status_port", 0))
          : -1;
  dcfg.dir = cfg.get("dir", "");
  dcfg.limits.max_atoms = cfg.get_int("max_atoms", 0);
  dcfg.limits.max_steps = cfg.get_int("max_steps", 0);
  dcfg.limits.max_walltime_s = cfg.get_double("max_walltime_s", 0.0);

  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (cfg.has("metrics_out")) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    metrics->add_sink(
        std::make_unique<obs::JsonlSink>(cfg.get("metrics_out", "")));
    dcfg.metrics = metrics.get();
  }

  const std::string transport = cfg.get("transport", "inproc");
  SCMD_REQUIRE(transport == "inproc" || transport == "tcp",
               "transport must be inproc | tcp, got: " + transport);

  if (transport == "tcp") {
    // One pool rank per process; rank 0 is the daemon.
    const int rank = static_cast<int>(cfg.get_int("rank", -1));
    const int nranks = static_cast<int>(cfg.get_int("nranks", 0));
    SCMD_REQUIRE(nranks >= 2 && rank >= 0 && rank < nranks,
                 "tcp pool needs rank in [0, nranks) and nranks >= 2");
    SCMD_REQUIRE(cfg.has("rendezvous"),
                 "tcp pool needs rendezvous=host:port");
    SCMD_REQUIRE(!cfg.has("workers"),
                 "tcp pools take their size from nranks, not workers");
    TcpConfig tc;
    tc.rank = rank;
    tc.num_ranks = nranks;
    const std::string rv = cfg.get("rendezvous", "");
    const auto colon = rv.rfind(':');
    SCMD_REQUIRE(colon != std::string::npos && colon > 0 &&
                     colon + 1 < rv.size(),
                 "rendezvous must be host:port, got: " + rv);
    tc.rendezvous_host = rv.substr(0, colon);
    tc.rendezvous_port = std::stoi(rv.substr(colon + 1));
    tc.advertise_host = cfg.get("advertise_host", "127.0.0.1");
    tc.connect_timeout_s = cfg.get_double("connect_timeout_s", 30.0);
    // A warm pool idles between jobs for arbitrarily long: never time
    // out a pool recv.  Dead peers are still detected by socket state.
    tc.recv_timeout_s = 0.0;

    TcpTransport pool(tc);
    if (rank == 0) {
      serve::ServeDaemon daemon(pool, dcfg);
      std::printf("# serve: pool of %d worker(s) ready (tcp)\n", nranks - 1);
      std::printf("# serve: client port %d\n", daemon.client_port());
      if (daemon.status_port() >= 0)
        std::printf("# serve: status port %d (tools/scmd_top.py --jobs "
                    "--port %d)\n",
                    daemon.status_port(), daemon.status_port());
      std::fflush(stdout);
      daemon.run();
      std::printf("# serve: drained, shutting down\n");
    } else {
      serve::run_worker(pool);
    }
    return 0;
  }

  // inproc pool: the daemon plus `workers` worker threads in this
  // process, sharing an in-process cluster.
  SCMD_REQUIRE(!cfg.has("rank") && !cfg.has("nranks") &&
                   !cfg.has("rendezvous"),
               "rank/nranks/rendezvous need transport=tcp");
  const int workers = static_cast<int>(cfg.get_int("workers", 4));
  SCMD_REQUIRE(workers >= 1, "the pool needs workers >= 1");
  Cluster cluster(workers + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 1; w <= workers; ++w)
    threads.emplace_back(
        [&cluster, w] { serve::run_worker(cluster.transport(w)); });

  serve::ServeDaemon daemon(cluster.transport(0), dcfg);
  std::printf("# serve: pool of %d worker(s) ready (inproc)\n", workers);
  std::printf("# serve: client port %d\n", daemon.client_port());
  if (daemon.status_port() >= 0)
    std::printf("# serve: status port %d (tools/scmd_top.py --jobs "
                "--port %d)\n",
                daemon.status_port(), daemon.status_port());
  std::fflush(stdout);
  daemon.run();
  for (std::thread& t : threads) t.join();
  std::printf("# serve: drained, shutting down\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: flags take the form --key=value: %s\n",
                   arg.c_str());
      return 2;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 2) {
      std::fprintf(stderr, "error: flags take the form --key=value: %s\n",
                   arg.c_str());
      return 2;
    }
    std::string key = arg.substr(2, eq - 2);
    for (char& c : key) {
      if (c == '-') c = '_';
    }
    cfg.set(key, arg.substr(eq + 1));
  }
  try {
    return serve_main(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
