// scmd_run — config-driven MD driver.
//
//   ./scmd_run path/to/run.conf [--key=value ...]
//
// Any `--key=value` flag overrides the same config key (dashes in the
// flag name map to underscores: `--metrics-out=m.jsonl` sets
// `metrics_out`).
//
// Configuration keys (all optional except `field`):
//
//   field            lj | morse | vashishta | bks | sw | tersoff |
//                    chain4 | chain5
//   strategy         SC (default) | FS | Hybrid | OC | RC | BondOrder |
//                    SC:2 | SC+p | ...
//   atoms            atom count (default 1536)
//   density          g/cc for the silica fields (default 2.2)
//   atoms_per_cell   occupancy for gas-built fields (default 4)
//   temperature      initial / thermostat temperature in K (default 300)
//   dt_fs            time step in femtoseconds (default 1.0)
//   steps            MD steps (default 100)
//   thermostat_tau_fs  Berendsen coupling time; 0 (default) = NVE
//   threads          intra-process enumeration threads (default 1)
//   ranks            > 1 runs the threaded message-passing cluster (NVE
//                    only; thermostat requires ranks = 1)
//   dense_fraction   > 0 builds the two-phase (dense slab + vapor) silica
//                    system with this atom fraction squashed into the
//                    lower half — the load-imbalance workload (silica
//                    fields only; default 0 = uniform)
//   balance          off (default) | auto | every=K — dynamic load
//                    balancing for parallel runs (ranks > 1): cost-driven
//                    non-uniform re-cuts with in-flight atom migration
//                    (docs/LOADBALANCE.md)
//   balance_threshold  auto mode: re-cut when the measured max/mean work
//                    ratio exceeds this (default 1.2)
//   balance_min_interval  auto mode: min steps between re-cuts
//                    (default 10)
//   tuple_cache      off (default) | skin=<s> — persistent tuple lists:
//                    enumerate once at rcut + s (Angstrom), replay the
//                    cached lists with exact-rcut filtering until any
//                    atom drifts farther than s/2 (docs/TUPLECACHE.md;
//                    pattern strategies SC/FS/OC/RC only)
//   check            off (default) | on — runtime invariant checker
//                    (docs/CHECKING.md): assert force balance, exactly-
//                    once tuple ownership, ghost/home consistency, and
//                    replay parity at phase boundaries; any violation
//                    aborts the run.  Needs the SCMD_CHECK build option
//                    (on by default); the SCMD_CHECK=1 environment
//                    variable enables it too.
//   log_every        table row cadence (default 10)
//   traj             extended-XYZ output path
//   checkpoint_in    resume from a checkpoint instead of building
//   checkpoint_out   write the final state here
//   checkpoint_every periodic durable snapshots: write a full resumable
//                    checkpoint (step counter, RNG, thermostat,
//                    decomposition, tuple-cache epoch) after every K
//                    completed steps into checkpoint_dir (default 0 =
//                    off; docs/DURABILITY.md).  Serial and tcp runs.
//   checkpoint_dir   snapshot directory (required with checkpoint_every)
//   checkpoint_retain  snapshots kept before pruning oldest (default 3)
//   restore          off (default) | auto | <path> — resume from the
//                    newest valid snapshot in checkpoint_dir (auto) or an
//                    explicit snapshot file; the run continues at the
//                    saved step counter
//   wal              write-ahead log path: CRC-framed trajectory frames
//                    at snapshot cadence plus every metrics record;
//                    reopening truncates a torn tail (crash recovery)
//   max_recoveries   tcp: rank failures survived by re-running the
//                    rendezvous and restoring from the last checkpoint
//                    before giving up (default 2 when checkpoint_every
//                    is set, else 0; pair with launch_tcp.sh --respawn)
//   seed             RNG seed (default 1)
//   measure_pressure true: report pressure at the end (serial only)
//   metrics_out      structured per-step metrics path (.csv => CSV,
//                    anything else => JSONL); see docs/OBSERVABILITY.md
//   metrics_every    emit cadence in steps (default 1)
//   trace_out        Chrome trace_event JSON path (open in Perfetto)
//   measure_force_set record |S(n)| per step (default: on when
//                    metrics_out is set)
//   transport        inproc (default) | tcp — communication backend for
//                    parallel runs (docs/TRANSPORT.md).  `inproc` runs
//                    `ranks` threads in this process; `tcp` makes this
//                    process ONE rank of a multi-process cluster — start
//                    one process per rank (tools/launch_tcp.sh does it):
//                      --transport=tcp --rank=i --nranks=N
//                      --rendezvous=host:port
//                    Output artifacts (metrics, trace, trajectory,
//                    checkpoint_out, stdout report) are written by
//                    rank 0 only.
//   rank             tcp: this process's rank in [0, nranks)
//   nranks           tcp: total process count (the cluster size)
//   rendezvous       tcp: host:port where rank 0 listens for bootstrap
//   advertise_host   tcp: address peers use to reach this rank
//                    (default 127.0.0.1; set for multi-host runs)
//   connect_timeout_s  tcp: give up dialing after this long (default 30)
//   recv_timeout_s   tcp: recv/collective wait bound in seconds before
//                    the run fails with an error; 0 = wait forever
//                    (default 60)
//   status_port      tcp, rank 0: serve a live run-status snapshot on
//                    this TCP port (0 picks an ephemeral port; the bound
//                    port is printed).  Poll it with tools/scmd_top.py.
//                    Omit the key to disable the monitor.  Safe to pass
//                    to every rank (launch_tcp.sh does) — only rank 0
//                    binds it.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "balance/rebalancer.hpp"
#include "check/invariant.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/fault.hpp"
#include "ckpt/wal.hpp"
#include "engines/observables.hpp"
#include "engines/serial_engine.hpp"
#include "io/checkpoint.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "io/xyz.hpp"
#include "md/units.hpp"
#include "net/status_server.hpp"
#include "net/tcp.hpp"
#include "obs/phase_hist.hpp"
#include "parallel/parallel_engine.hpp"
#include "parallel/supervisor.hpp"
#include "serve/runplan.hpp"
#include "support/config.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using namespace scmd;

// Config -> field/system translation is shared with the serve daemon's
// workers (serve/runplan.hpp), which is what makes a daemon-served job
// bit-for-bit reproducible under scmd_run.
using serve::build_system;
using serve::make_field;
using serve::species_symbols;

/// `.csv` extension selects the CSV sink, anything else JSONL.
std::unique_ptr<obs::MetricsSink> make_metrics_sink(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
    return std::make_unique<obs::CsvSink>(path);
  return std::make_unique<obs::JsonlSink>(path);
}

int run(const std::string& path,
        const std::vector<std::pair<std::string, std::string>>& overrides) {
  Config cfg = Config::load(path);
  for (const auto& [key, value] : overrides) cfg.set(key, value);
  cfg.require_known({"field", "strategy", "atoms", "density",
                     "atoms_per_cell", "temperature", "dt_fs", "steps",
                     "thermostat_tau_fs", "threads", "ranks", "log_every",
                     "traj", "checkpoint_in", "checkpoint_out",
                     "checkpoint_every", "checkpoint_dir",
                     "checkpoint_retain", "restore", "wal",
                     "max_recoveries", "seed",
                     "measure_pressure", "metrics_out", "metrics_every",
                     "trace_out", "measure_force_set", "dense_fraction",
                     "balance", "balance_threshold",
                     "balance_min_interval", "tuple_cache", "check",
                     "transport", "rank", "nranks", "rendezvous",
                     "advertise_host", "connect_timeout_s",
                     "recv_timeout_s", "status_port"});
  SCMD_REQUIRE(cfg.has("field"), "config must set `field`");

  const std::string field_name = cfg.get("field", "");
  const std::string strategy = cfg.get("strategy", "SC");
  const double dt = cfg.get_double("dt_fs", 1.0) * units::kFemtosecond;
  const int steps = static_cast<int>(cfg.get_int("steps", 100));
  const int ranks = static_cast<int>(cfg.get_int("ranks", 1));
  const double tau_fs = cfg.get_double("thermostat_tau_fs", 0.0);
  const int log_every = static_cast<int>(cfg.get_int("log_every", 10));

  // Communication backend.  `tcp` makes this process one rank of a
  // multi-process cluster; every process builds the same system from the
  // same seed, so only ids/positions each rank owns need no broadcast.
  const std::string transport_name = cfg.get("transport", "inproc");
  SCMD_REQUIRE(transport_name == "inproc" || transport_name == "tcp",
               "transport must be inproc | tcp, got: " + transport_name);
  const bool tcp = transport_name == "tcp";
  int tcp_rank = 0;
  int tcp_nranks = 0;
  if (tcp) {
    tcp_rank = static_cast<int>(cfg.get_int("rank", -1));
    tcp_nranks = static_cast<int>(cfg.get_int("nranks", 0));
    SCMD_REQUIRE(tcp_nranks >= 2 && tcp_rank >= 0 && tcp_rank < tcp_nranks,
                 "tcp transport needs rank in [0, nranks) and nranks >= 2");
    SCMD_REQUIRE(cfg.has("rendezvous"),
                 "tcp transport needs rendezvous=host:port");
    SCMD_REQUIRE(!cfg.has("ranks"),
                 "tcp runs take the cluster size from nranks, not ranks");
  } else {
    SCMD_REQUIRE(!cfg.has("rank") && !cfg.has("nranks") &&
                     !cfg.has("rendezvous"),
                 "rank/nranks/rendezvous need transport=tcp");
    SCMD_REQUIRE(!cfg.has("status_port"),
                 "status_port needs transport=tcp (the monitor serves a "
                 "distributed run's rank 0)");
  }
  // In a TCP run only rank 0 reports and writes artifacts.
  const bool root = !tcp || tcp_rank == 0;

  const auto field = make_field(field_name);
  Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 1)));
  ParticleSystem sys = build_system(cfg, field_name, *field, rng);

  if (root)
    std::printf(
        "# scmd_run: field=%s strategy=%s atoms=%d steps=%d ranks=%d\n",
        field_name.c_str(), strategy.c_str(), sys.num_atoms(), steps,
        tcp ? tcp_nranks : ranks);

  // Durability (docs/DURABILITY.md): periodic full-state snapshots, a
  // crash-recoverable write-ahead log, and (tcp) supervised rank-failure
  // recovery.  The in-process cluster has no dead-peer detection, so
  // durability keys are serial/tcp only.
  const int checkpoint_every =
      static_cast<int>(cfg.get_int("checkpoint_every", 0));
  const std::string checkpoint_dir = cfg.get("checkpoint_dir", "");
  const int checkpoint_retain =
      static_cast<int>(cfg.get_int("checkpoint_retain", 3));
  const std::string restore = cfg.get("restore", "off");
  const int max_recoveries = static_cast<int>(cfg.get_int(
      "max_recoveries", tcp && checkpoint_every > 0 ? 2 : 0));
  SCMD_REQUIRE(checkpoint_every == 0 || !checkpoint_dir.empty(),
               "checkpoint_every needs checkpoint_dir");
  SCMD_REQUIRE(restore == "off" || !checkpoint_dir.empty() ||
                   (restore != "auto" && !restore.empty()),
               "restore=auto needs checkpoint_dir");
  if (ranks > 1) {
    SCMD_REQUIRE(checkpoint_every == 0 && restore == "off" &&
                     !cfg.has("wal") && max_recoveries == 0,
                 "durability keys (checkpoint_every/restore/wal/"
                 "max_recoveries) need transport=tcp or ranks=1");
  }
  SCMD_REQUIRE(max_recoveries == 0 || tcp,
               "max_recoveries needs transport=tcp");
  // Declared before the metrics registry: the registry may hold a sink
  // writing into this WAL, so the WAL must be destroyed last.
  std::unique_ptr<ckpt::WalWriter> wal;
  if (cfg.has("wal") && root) {
    wal = std::make_unique<ckpt::WalWriter>(cfg.get("wal", ""));
    if (wal->recovered_torn_tail())
      std::printf("# wal: recovered %llu record(s), torn tail truncated\n",
                  static_cast<unsigned long long>(wal->recovered_records()));
  }

  // Observability artifacts: structured per-step metrics (JSONL/CSV) and
  // Chrome-trace phase spans.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (cfg.has("metrics_out") && root) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    metrics->add_sink(make_metrics_sink(cfg.get("metrics_out", "")));
    metrics->set_attr("field", field_name);
    metrics->set_attr("strategy", strategy);
    // Metrics ride the WAL too: each emitted record becomes a durable
    // CRC-framed kMetrics line next to the trajectory frames.
    if (wal) metrics->add_sink(std::make_unique<ckpt::WalMetricsSink>(*wal));
  }
  std::unique_ptr<obs::TraceSession> trace;
  if (cfg.has("trace_out") && root)
    trace = std::make_unique<obs::TraceSession>();
  const int metrics_every =
      static_cast<int>(cfg.get_int("metrics_every", 1));
  // |S(n)| is cheap to measure and part of the structured record, so it
  // defaults to on whenever metrics are requested.
  const bool measure_fs =
      cfg.get_bool("measure_force_set", metrics != nullptr);

  // Runtime invariant checker: `check=on` in the config, or SCMD_CHECK=1
  // in the environment.  Violations abort with a structured report.
  bool checking = false;
  {
    const std::string ck = cfg.get("check", "off");
    SCMD_REQUIRE(ck == "on" || ck == "off",
                 "check must be off | on, got: " + ck);
    check::Options copt;
    copt.enabled = (ck == "on");
    copt.action = check::FailureAction::kAbort;
    check::set_options(copt);
    check::init_from_env();
    checking = check::enabled();
#if !defined(SCMD_CHECK_ENABLED)
    if (checking) {
      std::printf("# check: requested, but this binary was built with "
                  "-DSCMD_CHECK=OFF — no invariants will run\n");
      checking = false;
    }
#endif
    if (checking) check::reset_checks_passed();
  }

  const std::string balance = cfg.get("balance", "off");
  TupleCacheConfig cache_cfg;
  {
    const std::string tc = cfg.get("tuple_cache", "off");
    if (tc.rfind("skin=", 0) == 0) {
      cache_cfg.enabled = true;
      cache_cfg.skin = std::stod(tc.substr(5));
      SCMD_REQUIRE(cache_cfg.skin >= 0.0,
                   "tuple_cache skin must be non-negative");
    } else {
      SCMD_REQUIRE(tc == "off",
                   "tuple_cache must be off | skin=<s>, got: " + tc);
    }
  }
  if (ranks > 1 || tcp) {
    SCMD_REQUIRE(tau_fs == 0.0,
                 "thermostatted runs need ranks = 1 (parallel runs are NVE)");
    ParallelRunConfig pcfg;
    pcfg.dt = dt;
    pcfg.num_steps = steps;
    pcfg.measure_force_set = measure_fs;
    pcfg.trace = trace.get();
    pcfg.metrics = metrics.get();
    pcfg.metrics_every = metrics_every;
    pcfg.tuple_cache = cache_cfg;
    if (balance != "off") {
      BalanceConfig bc;
      if (balance == "auto") {
        bc.mode = BalanceConfig::Mode::kAuto;
      } else if (balance.rfind("every=", 0) == 0) {
        bc.mode = BalanceConfig::Mode::kEvery;
        bc.every = std::stoi(balance.substr(6));
      } else {
        SCMD_REQUIRE(false, "balance must be off | auto | every=K, got: " +
                                balance);
      }
      bc.threshold = cfg.get_double("balance_threshold", 1.2);
      bc.min_interval =
          static_cast<int>(cfg.get_int("balance_min_interval", 10));
      pcfg.make_balancer = make_rebalancer_factory(bc);
    }
    // Live run monitor: rank 0 serves collector snapshots over a
    // length-prefixed status socket (tools/scmd_top.py polls it).  The
    // launcher passes the same flags to every rank; only rank 0 binds.
    std::unique_ptr<StatusServer> status;
    if (cfg.has("status_port") && root) {
      status = std::make_unique<StatusServer>(
          static_cast<int>(cfg.get_int("status_port", 0)));
      pcfg.status = status.get();
      std::printf("# status: serving live run status on port %d "
                  "(tools/scmd_top.py --port %d)\n",
                  status->port(), status->port());
      std::fflush(stdout);
    }
    // Durability plumbing for the distributed driver.
    pcfg.durability.checkpoint_every = checkpoint_every;
    pcfg.durability.checkpoint_dir = checkpoint_dir;
    pcfg.durability.checkpoint_retain = checkpoint_retain;
    pcfg.durability.wal = wal.get();
    if (restore != "off") {
      pcfg.durability.restore = true;
      if (restore != "auto") pcfg.durability.restore_path = restore;
    }
    const bool durable =
        checkpoint_every > 0 || restore != "off" || max_recoveries > 0;
    ParallelRunResult res;
    if (tcp) {
      // One rank of a multi-process cluster: connect the mesh, run, and
      // let rank 0 gather the final state into `sys`.
      TcpConfig tc;
      tc.rank = tcp_rank;
      tc.num_ranks = tcp_nranks;
      const std::string rv = cfg.get("rendezvous", "");
      const auto colon = rv.rfind(':');
      SCMD_REQUIRE(colon != std::string::npos && colon > 0 &&
                       colon + 1 < rv.size(),
                   "rendezvous must be host:port, got: " + rv);
      tc.rendezvous_host = rv.substr(0, colon);
      tc.rendezvous_port = std::stoi(rv.substr(colon + 1));
      tc.advertise_host = cfg.get("advertise_host", "127.0.0.1");
      tc.connect_timeout_s = cfg.get_double("connect_timeout_s", 30.0);
      tc.recv_timeout_s = cfg.get_double("recv_timeout_s", 60.0);
      const ProcessGrid grid = ProcessGrid::factor(tcp_nranks);
      if (durable) {
        // Supervised: a rank failure tears this attempt down, re-runs
        // the rendezvous (blocking until the respawned rank is back; see
        // tools/launch_tcp.sh --respawn), restores the last checkpoint,
        // and continues.
        SupervisorConfig sup;
        sup.make_transport = [tc]() -> std::unique_ptr<Transport> {
          return std::make_unique<TcpTransport>(tc);
        };
        sup.max_recoveries = max_recoveries;
        res = run_parallel_md_supervised(sys, *field, strategy, grid, pcfg,
                                         sup);
      } else {
        TcpTransport transport(tc);
        Comm comm(transport);
        res = run_parallel_md_rank(sys, *field, strategy, grid, pcfg, comm);
      }
    } else {
      res = run_parallel_md(sys, *field, strategy, ProcessGrid::factor(ranks),
                            pcfg);
    }
    if (root) {
      std::printf("# E_pot = %.6f, T = %.1f K, max-rank ghosts = %llu\n",
                  res.potential_energy, sys.temperature(),
                  static_cast<unsigned long long>(
                      res.max_rank.ghost_atoms_imported));
      if (balance != "off")
        std::printf("# balance: %d rebalance(s), last max/mean work ratio "
                    "%.4f\n",
                    res.rebalances, res.last_balance_ratio);
      if (cache_cfg.enabled)
        // Collective decision: every rank counts the same events, so the
        // max over ranks is the cluster-wide count.
        std::printf("# tuple_cache: %llu rebuild(s), %llu reuse step(s)\n",
                    static_cast<unsigned long long>(
                        res.max_rank.cache_rebuilds),
                    static_cast<unsigned long long>(
                        res.max_rank.cache_reuse_steps));
      if (durable)
        std::printf("# ckpt: %lld snapshot(s), restored from step %lld, "
                    "%d recover(y/ies)\n",
                    res.snapshots_written, res.restored_step,
                    res.recoveries);
    }
  } else {
    SCMD_REQUIRE(balance == "off",
                 "balance needs a parallel run (set ranks > 1)");

    // Serial durability: restore replaces the built system *before* the
    // engine primes forces from it, so the resumed trajectory continues
    // exactly where the snapshot left off.
    std::optional<ckpt::CheckpointDir> cdir;
    if (!checkpoint_dir.empty())
      cdir.emplace(checkpoint_dir, checkpoint_retain);
    const auto fault = ckpt::fault_plan_from_env();
    long long start_step = 0;
    if (restore != "off") {
      std::optional<ckpt::CheckpointData> data;
      if (restore != "auto") {
        data = ckpt::read_checkpoint(restore);
      } else if (cdir) {
        data = cdir->load_latest();
      }
      if (data) {
        SCMD_REQUIRE(data->system.num_atoms() == sys.num_atoms(),
                     "restored snapshot has a different atom count than "
                     "the configured system");
        SCMD_REQUIRE(data->clock.step <= steps,
                     "restored snapshot is past this run's step budget");
        sys = std::move(data->system);
        start_step = data->clock.step;
        if (data->rng) rng.set_state(*data->rng);
        std::printf("# restore: resuming at step %lld\n", start_step);
      }
    }

    SerialEngineConfig ecfg;
    ecfg.dt = dt;
    ecfg.num_threads = static_cast<int>(cfg.get_int("threads", 1));
    ecfg.measure_force_set = measure_fs;
    // phase_hist.* channels are derived from trace spans; when metrics
    // are on without trace_out, an internal session feeds them.
    obs::TraceSession internal_trace;
    obs::TraceSession* span_source =
        trace ? trace.get() : (metrics ? &internal_trace : nullptr);
    ecfg.trace = span_source;
    ecfg.tuple_cache = cache_cfg;
    SerialEngine engine(sys, *field,
                        make_strategy(strategy, *field, measure_fs), ecfg);

    std::unique_ptr<XyzWriter> traj;
    if (cfg.has("traj")) {
      traj = std::make_unique<XyzWriter>(cfg.get("traj", "out.xyz"),
                                         species_symbols(field_name));
    }
    std::unique_ptr<BerendsenThermostat> thermo;
    if (tau_fs > 0.0) {
      thermo = std::make_unique<BerendsenThermostat>(
          cfg.get_double("temperature", 300.0),
          tau_fs * units::kFemtosecond);
    }

    // Step s record: engine state after s steps; the s=0 work delta is
    // the constructor's priming force pass.  Deltas come from cumulative
    // counter snapshots, never from clear_counters().
    EngineCounters prev_counters;
    std::size_t span_cursor = 0;
    const auto record_obs = [&](int s) {
      if (!metrics) return;
      obs::StepSample sample;
      sample.potential_energy = engine.potential_energy();
      sample.total_energy = engine.total_energy();
      sample.temperature = sys.temperature();
      sample.work = engine.counters().delta_since(prev_counters);
      prev_counters = engine.counters();
      sample.max_n = field->max_n();
      obs::record_step(*metrics, sample);
      // Drain the spans recorded since the previous record into the
      // log-bucketed phase_hist.* latency histograms.
      const auto spans = span_source->events_since(span_cursor);
      span_cursor += spans.size();
      obs::observe_phase_events(*metrics, spans);
      if (s % (metrics_every > 0 ? metrics_every : 1) == 0 || s == steps)
        metrics->emit(s);
    };

    // Snapshot after `done` completed steps: full resumable state —
    // atoms, clock, RNG stream, thermostat, tuple-cache epoch.
    long long snapshots = 0;
    const auto write_snapshot = [&](long long done) {
      ckpt::CheckpointData data;
      data.system = sys;
      data.clock.step = done;
      data.clock.total_steps = steps;
      data.clock.dt = dt;
      data.rng = rng.state();
      if (thermo) {
        data.thermo =
            ckpt::ThermoState{1, cfg.get_double("temperature", 300.0),
                              tau_fs * units::kFemtosecond};
      }
      data.cache = ckpt::CacheState{engine.counters().cache_rebuilds,
                                    cache_cfg.skin};
      cdir->write(data);
      ++snapshots;
      if (wal) {
        ckpt::TrajFrame frame;
        frame.step = done;
        const auto pos = sys.positions();
        const auto vel = sys.velocities();
        frame.pos.assign(pos.begin(), pos.end());
        frame.vel.assign(vel.begin(), vel.end());
        wal->append(ckpt::WalRecordType::kTrajectory,
                    ckpt::encode_traj_frame(frame));
        wal->sync();
      }
      if (metrics) {
        metrics->add("ckpt.snapshots", 1);
        metrics->set("ckpt.last_step", static_cast<double>(done));
        if (wal)
          metrics->set("ckpt.wal_bytes",
                       static_cast<double>(wal->bytes_written()));
      }
    };

    std::printf("# %8s %14s %14s %10s\n", "step", "E_pot", "E_total",
                "T(K)");
    for (int s = static_cast<int>(start_step); s <= steps; ++s) {
      record_obs(s);
      if (log_every > 0 && s % log_every == 0) {
        std::printf("  %8d %14.6f %14.6f %10.1f\n", s,
                    engine.potential_energy(), engine.total_energy(),
                    sys.temperature());
        if (traj) traj->write_frame(sys, "step=" + std::to_string(s));
      }
      if (s == steps) break;  // state after the final step is recorded
      if (thermo) {
        engine.step(*thermo);
      } else {
        engine.step();
      }
      const long long done = s + 1;
      // Fault before snapshot: a killed run never checkpoints the step
      // it died on, so recovery resumes from the previous snapshot.
      ckpt::maybe_kill(fault, 0, done, nullptr);
      if (checkpoint_every > 0 &&
          (done % checkpoint_every == 0 || done == steps)) {
        write_snapshot(done);
      }
    }
    if (checkpoint_every > 0)
      std::printf("# ckpt: %lld snapshot(s) in %s\n", snapshots,
                  checkpoint_dir.c_str());
    if (cache_cfg.enabled)
      std::printf("# tuple_cache: %llu rebuild(s), %llu reuse step(s)\n",
                  static_cast<unsigned long long>(
                      engine.counters().cache_rebuilds),
                  static_cast<unsigned long long>(
                      engine.counters().cache_reuse_steps));
    if (cfg.get_bool("measure_pressure", false)) {
      const Pressure p = measure_pressure(sys, *field, "SC");
      std::printf("# pressure: total %.6g eV/A^3 (kinetic %.3g, virial "
                  "%.3g)\n",
                  p.total(), p.kinetic, p.virial);
    }
  }

  if (checking && root)
    std::printf("# check: %llu invariant check(s) verified, zero "
                "violations\n",
                static_cast<unsigned long long>(check::checks_passed()));

  if (trace) {
    trace->save(cfg.get("trace_out", ""));
    std::printf("# trace: %s (%zu spans; open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                cfg.get("trace_out", "").c_str(), trace->num_events());
  }
  if (metrics)
    std::printf("# metrics: %s\n", cfg.get("metrics_out", "").c_str());

  // Only rank 0's `sys` holds the gathered final state in a TCP run.
  if (cfg.has("checkpoint_out") && root)
    save_checkpoint(sys, cfg.get("checkpoint_out", ""));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::vector<std::pair<std::string, std::string>> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos || eq == 2) {
        std::fprintf(stderr, "error: flags take the form --key=value: %s\n",
                     arg.c_str());
        return 2;
      }
      std::string key = arg.substr(2, eq - 2);
      for (char& c : key) {
        if (c == '-') c = '_';
      }
      overrides.emplace_back(key, arg.substr(eq + 1));
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      std::fprintf(stderr, "error: more than one config file given\n");
      return 2;
    }
  }
  if (config_path.empty()) {
    std::fprintf(stderr, "usage: %s <config-file> [--key=value ...]\n",
                 argv[0]);
    return 2;
  }
  try {
    return run(config_path, overrides);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
