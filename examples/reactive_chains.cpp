// Dynamic 4-tuple computation — the ReaxFF-motivated regime (paper
// Sec. 1): chains form and break as the fluid evolves, so the quadruplet
// set must be rebuilt every step.  This example contrasts the dynamic
// enumeration with a frozen (biomolecular-style) static list: the static
// list's valid fraction decays while the dynamic count tracks the true
// chain population.
//
//   ./reactive_chains [--atoms=400] [--steps=300] [--temperature=0.02]

#include <cstdio>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/static_list.hpp"
#include "potentials/dihedral.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"atoms", "steps", "temperature", "seed"});
  const long long atoms = cli.get_int("atoms", 400);
  const int steps = static_cast<int>(cli.get_int("steps", 300));
  const double temperature = cli.get_double("temperature", 0.02);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));
  const ChainDihedral field;
  ParticleSystem sys = make_gas(field, atoms, 3.0, temperature, rng);

  const StaticTupleList frozen =
      StaticTupleList::build(sys, 4, field.rcut(4));

  SerialEngineConfig cfg;
  cfg.dt = 0.002;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);

  std::printf("# chain-dihedral fluid: %d atoms, %zu initial 4-chains\n",
              sys.num_atoms(), frozen.size());
  std::printf("# %6s %16s %16s %12s\n", "step", "dynamic 4-chains",
              "static valid", "E_total");
  for (int s = 0; s <= steps; ++s) {
    if (s % 30 == 0) {
      engine.clear_counters();
      engine.compute_forces();
      std::printf("  %6d %16llu %15.1f%% %12.4f\n", s,
                  static_cast<unsigned long long>(
                      engine.counters().tuples[4].accepted),
                  100.0 * frozen.valid_fraction(sys, field.rcut(4)),
                  engine.total_energy());
    }
    engine.step();
  }
  std::printf(
      "# a static list cannot follow chain formation/breaking — the\n"
      "# dynamic n-tuple machinery (paper Sec. 2.2) rebuilds it each "
      "step.\n");
  return 0;
}
