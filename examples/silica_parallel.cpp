// Distributed silica MD with the real message-passing runtime, plus
// checkpoint/restart and structural analysis:
//
//   1. run thermostat-free SC-MD on a P-rank threaded cluster,
//   2. checkpoint the final state,
//   3. restore it and verify Si-O structure with the analysis module.
//
//   ./silica_parallel [--atoms=3000] [--ranks=8] [--steps=20]
//                     [--strategy=SC] [--ckpt=/tmp/silica.ckpt]

#include <cstdio>

#include "io/checkpoint.hpp"
#include "md/analysis.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv,
                {"atoms", "ranks", "steps", "strategy", "ckpt", "seed"});
  const long long atoms = cli.get_int("atoms", 3000);
  const int ranks = static_cast<int>(cli.get_int("ranks", 8));
  const int steps = static_cast<int>(cli.get_int("steps", 20));
  const std::string strategy = cli.get("strategy", "SC");
  const std::string ckpt = cli.get("ckpt", "/tmp/silica.ckpt");

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 21)));
  ParticleSystem sys = make_silica(atoms, 2.2, 300.0, rng);
  const VashishtaSiO2 field;

  const ProcessGrid pgrid = ProcessGrid::factor(ranks);
  std::printf("# %s-MD on %d ranks (%dx%dx%d), %lld atoms, %d steps\n",
              strategy.c_str(), ranks, pgrid.dims().x, pgrid.dims().y,
              pgrid.dims().z, atoms, steps);

  ParallelRunConfig cfg;
  cfg.dt = 1.0 * units::kFemtosecond;
  cfg.num_steps = steps;
  const ParallelRunResult res =
      run_parallel_md(sys, field, strategy, pgrid, cfg);
  std::printf("# potential energy %.4f eV, T = %.1f K\n",
              res.potential_energy, sys.temperature());
  std::printf("# comm: %llu ghost imports (max rank), %llu runtime "
              "messages, %llu bytes\n",
              static_cast<unsigned long long>(
                  res.max_rank.ghost_atoms_imported),
              static_cast<unsigned long long>(res.runtime_messages),
              static_cast<unsigned long long>(res.runtime_bytes));

  save_checkpoint(sys, ckpt);
  const ParticleSystem restored = load_checkpoint(ckpt);
  std::printf("# checkpoint round trip: %d atoms -> %s\n",
              restored.num_atoms(), ckpt.c_str());

  const Rdf si_o = compute_rdf(restored, kSilicon, kOxygen, 4.0, 80);
  const double coord = mean_coordination(restored, kSilicon, kOxygen, 2.1);
  const AngleDistribution osio =
      compute_adf(restored, kSilicon, kOxygen, 2.1, 36);
  std::printf("# structure: Si-O peak %.2f A, Si coordination %.2f, "
              "O-Si-O peak %.0f deg\n",
              si_o.peak_position(1.0), coord, osio.peak_angle_deg());
  return 0;
}
