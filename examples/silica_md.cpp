// Silica MD — the paper's production workload (Sec. 5): Vashishta SiO2
// with dynamic pair (rcut 5.5 Å) and triplet (rcut 2.6 Å) computation.
//
// Runs thermostatted MD with a chosen strategy (SC / FS / Hybrid),
// reports thermodynamics, tuple-search statistics, and optionally writes
// an extended-XYZ trajectory.
//
//   ./silica_md [--atoms=N] [--steps=N] [--strategy=SC|FS|Hybrid]
//               [--temperature=K] [--traj=out.xyz]

#include <cstdio>

#include "engines/serial_engine.hpp"
#include "io/xyz.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv,
                {"atoms", "steps", "strategy", "temperature", "traj",
                 "seed"});
  const long long atoms = cli.get_int("atoms", 1536);
  const int steps = static_cast<int>(cli.get_int("steps", 100));
  const std::string strategy = cli.get("strategy", "SC");
  const double temperature = cli.get_double("temperature", 300.0);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  ParticleSystem sys = make_silica(atoms, 2.2, temperature, rng);
  const VashishtaSiO2 field;

  SerialEngineConfig config;
  config.dt = 1.0 * units::kFemtosecond;
  config.measure_force_set = true;
  SerialEngine engine(sys, field, make_strategy(strategy, field, true),
                      config);
  const BerendsenThermostat thermostat(temperature,
                                       50.0 * units::kFemtosecond);

  std::unique_ptr<XyzWriter> traj;
  if (cli.has("traj")) {
    traj = std::make_unique<XyzWriter>(cli.get("traj", "silica.xyz"),
                                       std::vector<std::string>{"Si", "O"});
  }

  std::printf("# silica: %d atoms, box %.2f^3 A, strategy %s\n",
              sys.num_atoms(), sys.box().length(0), strategy.c_str());
  std::printf("# %6s %12s %12s %10s\n", "step", "E_pot(eV)", "E_tot(eV)",
              "T(K)");
  for (int s = 0; s <= steps; ++s) {
    if (s % 10 == 0) {
      std::printf("  %6d %12.4f %12.4f %10.1f\n", s,
                  engine.potential_energy(), engine.total_energy(),
                  sys.temperature());
      if (traj) traj->write_frame(sys, "step=" + std::to_string(s));
    }
    engine.step(thermostat);
  }

  const EngineCounters& c = engine.counters();
  const double per_step = 1.0 / (steps + 1);
  std::printf("\n# per-step averages (%s pattern):\n", strategy.c_str());
  std::printf("#   pair    search %12.0f  accepted %12.0f\n",
              static_cast<double>(c.tuples[2].search_steps) * per_step,
              static_cast<double>(c.tuples[2].accepted) * per_step);
  std::printf("#   triplet search %12.0f  accepted %12.0f\n",
              static_cast<double>(c.tuples[3].search_steps) * per_step,
              static_cast<double>(c.tuples[3].accepted) * per_step);
  std::printf("#   |S(3)| force-set size %12.0f\n",
              static_cast<double>(c.force_set[3]) * per_step);
  if (c.list_pairs > 0) {
    std::printf("#   Verlet list pairs %12.0f\n",
                static_cast<double>(c.list_pairs) * per_step);
  }
  return 0;
}
