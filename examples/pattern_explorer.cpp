// Pattern explorer: inspect the computation-pattern algebra of Sec. 3-4.
//
// Prints, for n = 2..nmax, the FS/HS-style/SC pattern sizes, footprints,
// and import volumes, and optionally dumps the paths of a pattern.
//
//   ./pattern_explorer [--nmax=4] [--brick=4] [--dump-n=0]

#include <iostream>

#include "pattern/analysis.hpp"
#include "pattern/generate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"nmax", "brick", "dump-n"});
  const int nmax = static_cast<int>(cli.get_int("nmax", 4));
  const int brick = static_cast<int>(cli.get_int("brick", 4));
  const int dump_n = static_cast<int>(cli.get_int("dump-n", 0));

  Table table({"n", "|FS|", "|SC|", "SC/FS", "footprint(FS)",
               "footprint(SC)", "import(FS)", "import(SC)"});
  table.set_title("Computation patterns, import volumes for a " +
                  std::to_string(brick) + "^3 cell brick");
  table.set_precision(3);
  for (int n = 2; n <= nmax; ++n) {
    const Pattern fs = generate_fs(n);
    const Pattern sc = make_sc(n);
    table.add_row({static_cast<long long>(n),
                   static_cast<long long>(fs.size()),
                   static_cast<long long>(sc.size()),
                   static_cast<double>(sc.size()) / fs.size(),
                   static_cast<long long>(cell_footprint(fs)),
                   static_cast<long long>(cell_footprint(sc)),
                   import_volume(fs, {brick, brick, brick}),
                   import_volume(sc, {brick, brick, brick})});
  }
  table.print(std::cout);

  std::cout << "\nClassic pair shells: |HS| = " << make_hs().size()
            << ", |ES| = " << make_es().size()
            << ", ES import at l=1: " << import_volume(make_es(), {1, 1, 1})
            << " cells (paper: 7)\n";

  if (dump_n >= 2) {
    const Pattern sc = make_sc(dump_n);
    std::cout << "\n" << sc << " paths:\n";
    for (const Path& p : sc) {
      std::cout << "  " << p << (p.self_reflective() ? "  (self-twin)" : "")
                << "\n";
    }
  }
  return 0;
}
