// Reactive (bond-order) silicon: heat a diamond crystal with the Tersoff
// field and watch the bond network respond — coordination and bond-order
// statistics change with temperature, which is precisely why the tuple
// neighborhoods must be dynamic (paper Sec. 1).
//
//   ./tersoff_melt [--cells=3] [--steps=400] [--temperature=1800]

#include <cstdio>

#include "engines/serial_engine.hpp"
#include "md/analysis.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/tersoff.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

namespace {

scmd::ParticleSystem diamond_si(int cells, double a, scmd::Rng& rng) {
  using namespace scmd;
  ParticleSystem sys(Box::cubic(cells * a), {28.0855});
  const Vec3 fcc[4] = {{0, 0, 0}, {0, 0.5, 0.5}, {0.5, 0, 0.5},
                       {0.5, 0.5, 0}};
  for (int cx = 0; cx < cells; ++cx) {
    for (int cy = 0; cy < cells; ++cy) {
      for (int cz = 0; cz < cells; ++cz) {
        for (const Vec3& f : fcc) {
          for (const Vec3& b : {Vec3{0, 0, 0}, Vec3{0.25, 0.25, 0.25}}) {
            Vec3 r = (Vec3{static_cast<double>(cx), static_cast<double>(cy),
                           static_cast<double>(cz)} +
                      f + b) *
                     a;
            r += Vec3{rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02),
                      rng.uniform(-0.02, 0.02)};
            sys.add_atom(r, {}, 0);
          }
        }
      }
    }
  }
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"cells", "steps", "temperature", "seed"});
  const int cells = static_cast<int>(cli.get_int("cells", 3));
  const int steps = static_cast<int>(cli.get_int("steps", 400));
  const double target = cli.get_double("temperature", 1800.0);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 9)));
  const TersoffSilicon field;
  ParticleSystem sys = diamond_si(cells, 5.432, rng);
  thermalize(sys, 300.0, rng);

  SerialEngineConfig cfg;
  cfg.dt = 1.0 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy("BondOrder", field), cfg);
  const BerendsenThermostat thermo(target, 25.0 * units::kFemtosecond);

  std::printf("# Tersoff silicon: %d atoms, heating to %.0f K\n",
              sys.num_atoms(), target);
  std::printf("# %6s %9s %14s %14s %12s\n", "step", "T(K)", "E_pot/atom",
              "coordination", "triples/step");
  for (int s = 0; s <= steps; ++s) {
    if (s % 50 == 0) {
      engine.clear_counters();
      engine.compute_forces();
      const double coord = mean_coordination(sys, 0, 0, 2.7);
      std::printf("  %6d %9.1f %14.4f %14.3f %12llu\n", s,
                  sys.temperature(),
                  engine.potential_energy() / sys.num_atoms(), coord,
                  static_cast<unsigned long long>(
                      engine.counters().tuples[3].chain_candidates));
    }
    engine.step(thermo);
  }
  std::printf("# diamond starts 4-coordinated (E_coh ~ -4.63 eV/atom); "
              "heating disorders the bond network.\n");
  return 0;
}
