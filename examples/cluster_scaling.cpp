// Cluster scaling demo: run the same silica MD on a real multi-rank
// (threaded) cluster and on the virtual cluster simulator, and show how
// import volume and modeled step time change with the process grid.
//
//   ./cluster_scaling [--atoms=N] [--steps=N] [--ranks=8]
//                     [--strategy=SC|FS|Hybrid] [--platform=xeon|bgq]

#include <iostream>

#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/cost_model.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv,
                {"atoms", "steps", "ranks", "strategy", "platform", "seed"});
  const long long atoms = cli.get_int("atoms", 6000);
  const int steps = static_cast<int>(cli.get_int("steps", 5));
  const int ranks = static_cast<int>(cli.get_int("ranks", 8));
  const std::string strategy = cli.get("strategy", "SC");
  const PlatformParams platform =
      platform_by_name(cli.get("platform", "xeon"));

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 11)));
  ParticleSystem sys = make_silica(atoms, 2.2, 300.0, rng);
  const VashishtaSiO2 field;

  // --- Real threaded cluster run -------------------------------------
  const ProcessGrid pgrid = ProcessGrid::factor(ranks);
  std::cout << "# real threaded cluster: " << ranks << " ranks ("
            << pgrid.dims() << " grid), " << steps << " steps, strategy "
            << strategy << "\n";
  ParallelRunConfig cfg;
  cfg.dt = 1.0 * units::kFemtosecond;
  cfg.num_steps = steps;
  const ParallelRunResult res =
      run_parallel_md(sys, field, strategy, pgrid, cfg);
  std::cout << "#   potential energy " << res.potential_energy << " eV, "
            << res.runtime_messages << " messages, " << res.runtime_bytes
            << " bytes moved\n\n";

  // --- Virtual sweep over process grids ------------------------------
  const ClusterSimulator sim(sys, field);
  Table table({"ranks", "N/P", "ghosts/rank", "search/rank", "T_compute(s)",
               "T_comm(s)", "T_step(s)"});
  table.set_title("Virtual " + platform.name + " sweep, strategy " +
                  strategy);
  table.set_precision(6);
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    const ProcessGrid grid = ProcessGrid::factor(p);
    ClusterSample sample;
    try {
      sample = sim.measure(strategy, grid, 4);
    } catch (const Error&) {
      break;  // grain finer than the cutoff allows
    }
    const StepCost cost = estimate_step(sample.max_rank, platform);
    table.add_row({static_cast<long long>(p),
                   static_cast<long long>(sys.num_atoms() / p),
                   static_cast<long long>(
                       sample.max_rank.ghost_atoms_imported),
                   static_cast<long long>(
                       sample.max_rank.total_search_steps()),
                   cost.compute_s, cost.comm_s, cost.total()});
  }
  table.print(std::cout);
  return 0;
}
