// Quickstart: Lennard-Jones gas in NVE with the shift-collapse engine.
//
// Demonstrates the minimal API surface: build a system, pick a force
// field and a strategy, step, and read energies/counters.
//
//   ./quickstart [--atoms=N] [--steps=N] [--dt=X]

#include <cstdio>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "potentials/lj.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"atoms", "steps", "dt", "seed"});
  const long long atoms = cli.get_int("atoms", 1000);
  const int steps = static_cast<int>(cli.get_int("steps", 200));
  const double dt = cli.get_double("dt", 0.005);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  const LennardJones lj;  // reduced units: eps = sigma = mass = 1
  ParticleSystem sys = make_gas(lj, atoms, 4.0, 1.0, rng);

  SerialEngineConfig config;
  config.dt = dt;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), config);

  std::printf("# LJ quickstart: %d atoms, box %.2f^3, dt %.4g\n",
              sys.num_atoms(), sys.box().length(0), dt);
  std::printf("# %6s %14s %14s %14s\n", "step", "potential", "kinetic",
              "total");
  for (int s = 0; s <= steps; ++s) {
    if (s % 20 == 0) {
      std::printf("  %6d %14.6f %14.6f %14.6f\n", s,
                  engine.potential_energy(), sys.kinetic_energy(),
                  engine.total_energy());
    }
    engine.step();
  }

  const EngineCounters& c = engine.counters();
  std::printf("# pair search steps: %llu, pair evaluations: %llu\n",
              static_cast<unsigned long long>(c.tuples[2].search_steps),
              static_cast<unsigned long long>(c.evals[2]));
  return 0;
}
